"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a complete, serializable description of one
experiment family: the deployment shape (regions, phones, per-region
heterogeneity), a timed event script (crash bursts, churn, joins,
handoffs, workload surges, battery drops), and the scheme × app × seed
matrix to sweep.  Specs are plain dataclasses that round-trip through
``dict``/JSON losslessly, so they can live in files, travel across
process boundaries (the parallel sweep executor pickles the dict form),
and be diffed like any other artifact.

The vocabulary of event kinds:

``crash``
    ``phones`` of ``region`` die simultaneously at ``time`` (Fig. 9's
    simultaneous-failure burst; one phone is the degenerate case).
``cascade``
    ``phones`` crash one-by-one, ``interval`` seconds apart, starting at
    ``time`` (a rolling failure cascade inside a checkpoint period).
``depart``
    ``phones`` physically walk out of ``region`` at ``time``.
``churn``
    phones trickle out at exponential gaps of mean ``interval`` from
    ``time`` (deterministic per run seed).
``join``
    ``count`` fresh phones enter ``region`` at ``time`` and register as
    idle spares (churn's arrival side).
``handoff``
    ``phones`` walk from ``region`` into ``to_region`` (default: the
    next region down the cascade) at ``time``.
``surge``
    the source workloads of ``region`` speed up by ``factor`` between
    ``time`` and ``until`` (flash-crowd load spike).
``battery``
    the batteries of ``phones`` drop to ``charge`` at ``time``
    (forecasting chronic-battery self-reports and organic deaths).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.apps.registry import AppRef, AppRefLike
from repro.util.simlog import get_logger

EVENT_KINDS = (
    "crash", "cascade", "depart", "churn", "join", "handoff", "surge", "battery",
)


@dataclass(frozen=True)
class EventSpec:
    """One entry of a scenario's timed event script."""

    kind: str
    time: float
    #: Region the event targets (cascade index).
    region: int = 0
    #: Region-local computing-phone indices (``region{r}.p{i}``).
    phones: Tuple[int, ...] = ()
    #: ``join``: number of phones admitted.
    count: int = 1
    #: ``handoff``: target region (None -> next region down the cascade).
    to_region: Optional[int] = None
    #: ``surge``: rate multiplier (>1 speeds sources up).
    factor: float = 1.0
    #: ``surge``/``churn``: end of the window (None -> open-ended).
    until: Optional[float] = None
    #: ``cascade``/``churn``: seconds between consecutive phones.
    interval: float = 30.0
    #: ``battery``: new charge fraction.
    charge: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("event time must be >= 0")
        if self.kind == "surge" and self.factor <= 0:
            raise ValueError("surge factor must be positive")
        if self.kind == "join" and self.count < 1:
            raise ValueError("join count must be >= 1")
        if self.kind == "battery" and not 0.0 <= self.charge <= 1.0:
            raise ValueError("charge must be in [0, 1]")
        object.__setattr__(self, "phones", tuple(self.phones))

    def scaled(self, factor: float) -> "EventSpec":
        """The same event with every timestamp multiplied by ``factor``."""
        return dataclasses.replace(
            self,
            time=self.time * factor,
            until=None if self.until is None else self.until * factor,
            interval=self.interval * factor,
        )


@dataclass(frozen=True)
class RegionSpec:
    """Per-region heterogeneity (None fields fall back to spec defaults)."""

    phones: Optional[int] = None
    idle: Optional[int] = None
    #: Compute speed relative to the reference device.
    cpu_speed: float = 1.0
    #: Initial battery charge of this region's phones.
    charge_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_speed <= 0:
            raise ValueError("cpu_speed must be positive")
        if not 0.0 < self.charge_fraction <= 1.0:
            raise ValueError("charge_fraction must be in (0, 1]")


@dataclass(frozen=True)
class TelemetrySpec:
    """Opt-in live QoS telemetry for a scenario's cases.

    When present on a :class:`ScenarioSpec`, every case attaches a
    :class:`repro.telemetry.QoSMonitor` sampling on ``interval_s`` of
    virtual time, and sweeps can persist the per-case timelines
    alongside the row artifact.  Absent (the default), no telemetry
    machinery is built at all and artifacts stay byte-identical to
    pre-telemetry runs.
    """

    #: Virtual-time sampling interval in seconds.
    interval_s: float = 10.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("telemetry interval must be positive")

    def scaled(self, factor: float) -> "TelemetrySpec":
        """Interval scaled with the scenario clock (a ``quick()`` copy
        keeps its snapshot count, not its wall interval)."""
        return dataclasses.replace(self, interval_s=self.interval_s * factor)


@dataclass(frozen=True)
class MatrixSpec:
    """The app × scheme × seed product a scenario sweeps.

    ``apps`` entries are :class:`~repro.apps.registry.AppRef`-likes: a
    bare registered name (``"bcp"``) or a parameterized mapping
    (``{"name": "bcp", "params": {"n_counters": 8}}``); they normalize
    to :class:`AppRef` so a matrix can sweep application parameters,
    not just application identities.  Duplicate entries on any axis are
    rejected — they would run identical cases whose artifacts collide.
    """

    apps: Tuple[AppRefLike, ...] = ("bcp",)
    schemes: Tuple[str, ...] = ("ms-8",)
    seeds: Tuple[int, ...] = (3,)

    def __post_init__(self) -> None:
        if not (self.apps and self.schemes and self.seeds):
            raise ValueError("matrix axes must be non-empty")
        object.__setattr__(
            self, "apps", tuple(AppRef.coerce(a) for a in self.apps))
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        for axis, values in (("apps", [a.key for a in self.apps]),
                             ("schemes", self.schemes),
                             ("seeds", self.seeds)):
            if len(set(values)) != len(values):
                dupes = sorted({v for v in values if values.count(v) > 1})
                raise ValueError(
                    f"duplicate {axis} entries {dupes}: identical cases "
                    "would run twice and collide in artifacts"
                )

    def cases(self) -> Iterator[Tuple[AppRef, str, int]]:
        """Every (app ref, scheme, seed) combination, in deterministic order."""
        for app in self.apps:
            for scheme in self.schemes:
                for seed in self.seeds:
                    yield app, scheme, seed

    def __len__(self) -> int:
        return len(self.apps) * len(self.schemes) * len(self.seeds)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; param-free app refs stay bare strings, so
        pre-existing scenario artifacts are byte-identical."""
        return {
            "apps": [a.to_jsonable() for a in self.apps],
            "schemes": list(self.schemes),
            "seeds": list(self.seeds),
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario."""

    name: str
    description: str = ""
    duration_s: float = 900.0
    warmup_s: float = 150.0
    n_regions: int = 1
    phones_per_region: int = 8
    idle_per_region: int = 2
    checkpoint_period_s: float = 300.0
    #: Per-region overrides, cascade order (may be shorter than n_regions).
    regions: Tuple[RegionSpec, ...] = ()
    #: The timed event script; scheduled in listed order.
    events: Tuple[EventSpec, ...] = ()
    matrix: MatrixSpec = field(default_factory=MatrixSpec)
    #: Opt-in live QoS telemetry (None = off; see :class:`TelemetrySpec`).
    telemetry: Optional[TelemetrySpec] = None
    #: Device-state backend: "object" (per-phone objects, the default) or
    #: "fleet" (vectorized struct-of-arrays for large-n populations).
    device_backend: str = "object"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.device_backend not in ("object", "fleet"):
            raise ValueError(
                f"unknown device_backend {self.device_backend!r}; "
                "expected 'object' or 'fleet'"
            )
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not 0 <= self.warmup_s < self.duration_s:
            raise ValueError("warmup must be within the run duration")
        if self.n_regions < 1:
            raise ValueError("need at least one region")
        if len(self.regions) > self.n_regions:
            raise ValueError("more region overrides than regions")
        object.__setattr__(self, "regions", tuple(self.regions))
        object.__setattr__(self, "events", tuple(self.events))
        if self.telemetry is not None and not isinstance(
            self.telemetry, TelemetrySpec
        ):
            object.__setattr__(
                self, "telemetry", TelemetrySpec(**dict(self.telemetry)))
        for ev in self.events:
            if not 0 <= ev.region < self.n_regions:
                raise ValueError(f"event targets unknown region {ev.region}")
            if ev.kind == "handoff" and ev.to_region is not None and not (
                0 <= ev.to_region < self.n_regions
            ):
                raise ValueError(f"handoff targets unknown region {ev.to_region}")
        late = self.late_events()
        if late:
            # Not an error: a spec may be the pre-``quick()`` original of
            # a scaled copy whose events do fit.  But an event at or past
            # duration_s never fires as written, which is almost always a
            # typo — say so at load time, once per spec object.
            get_logger().warning(
                "scenario %r: %d event(s) at/past duration_s=%.1f never "
                "fire: %s", self.name, len(late), self.duration_s,
                ", ".join(f"{ev.kind}@{ev.time:g}s" for ev in late),
            )

    # -- derived views -------------------------------------------------------
    def late_events(self) -> Tuple[EventSpec, ...]:
        """Events scheduled at or past ``duration_s`` — dead script
        entries that can never fire within the run window."""
        return tuple(ev for ev in self.events if ev.time >= self.duration_s)

    def region_spec(self, index: int) -> RegionSpec:
        """The effective override for region ``index``."""
        return self.regions[index] if index < len(self.regions) else RegionSpec()

    def scaled(self, factor: float) -> "ScenarioSpec":
        """Time-compressed/stretched copy: durations, event times, and the
        checkpoint period all scale together so the scenario keeps its
        shape (a crash 1.5 periods in stays 1.5 periods in)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return dataclasses.replace(
            self,
            duration_s=self.duration_s * factor,
            warmup_s=self.warmup_s * factor,
            checkpoint_period_s=self.checkpoint_period_s * factor,
            events=tuple(ev.scaled(factor) for ev in self.events),
            telemetry=(None if self.telemetry is None
                       else self.telemetry.scaled(factor)),
        )

    def quick(self, target_duration_s: float = 300.0) -> "ScenarioSpec":
        """A smoke-test copy compressed to about ``target_duration_s``."""
        if self.duration_s <= target_duration_s:
            return self
        return self.scaled(target_duration_s / self.duration_s)

    def scaled_phones(self, n_phones: int) -> "ScenarioSpec":
        """The same scenario with each region's population grown to
        ``n_phones``: the computing count is kept (the dataflow shape
        must not change) and the idle spare pool absorbs the rest.
        Per-region ``RegionSpec`` phone/idle overrides are dropped —
        population scaling and hand-tuned counts don't compose."""
        if n_phones < self.phones_per_region:
            raise ValueError(
                f"n_phones ({n_phones}) is below the computing population "
                f"({self.phones_per_region})"
            )
        return dataclasses.replace(
            self,
            idle_per_region=n_phones - self.phones_per_region,
            regions=tuple(
                dataclasses.replace(r, phones=None, idle=None)
                for r in self.regions
            ),
        )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready, lossless).

        The ``telemetry`` key is omitted entirely when unset — the same
        convention that keeps param-free app refs bare strings — so
        every pre-telemetry artifact, golden hash, and spec digest is
        byte-identical to one produced by this code.
        """
        d = dataclasses.asdict(self)
        d["regions"] = [dataclasses.asdict(r) for r in self.regions]
        d["events"] = [dataclasses.asdict(e) for e in self.events]
        d["matrix"] = self.matrix.to_dict()
        if self.telemetry is None:
            del d["telemetry"]
        if self.device_backend == "object":
            # Same omission convention as ``telemetry``: default-valued
            # runs serialize exactly as they did before the knob existed,
            # keeping golden hashes and spec digests byte-identical.
            del d["device_backend"]
        return d

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (tolerates JSON's tuple->list)."""
        d = dict(data)
        d["regions"] = tuple(RegionSpec(**r) for r in d.get("regions", ()))
        d["events"] = tuple(
            EventSpec(**{**e, "phones": tuple(e.get("phones", ()))})
            for e in d.get("events", ())
        )
        matrix = d.get("matrix", {})
        if not isinstance(matrix, MatrixSpec):
            d["matrix"] = MatrixSpec(
                apps=tuple(matrix.get("apps", ("bcp",))),
                schemes=tuple(matrix.get("schemes", ("ms-8",))),
                seeds=tuple(matrix.get("seeds", (3,))),
            )
        telemetry = d.get("telemetry")
        if telemetry is not None and not isinstance(telemetry, TelemetrySpec):
            d["telemetry"] = TelemetrySpec(**telemetry)
        return cls(**d)

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON form (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
