"""The sweep executor: warm worker pool, resume cache, streaming artifacts.

``run_sweep`` fans a scenario's matrix out over a process pool and
aggregates per-case metric rows into one canonical JSON artifact.  Three
properties make sweeps cheap at scale without changing a single output
byte:

**Warm pool.**  The ``multiprocessing`` pool persists between sweeps
(module-level, torn down atexit).  Workers receive the spec once, at
pool build time, through the initializer — not pickled into every case
payload — so a re-run, a resumed run, or a back-to-back sweep of the
same spec reuses live workers.  The start method is forkserver-aware:
``fork`` where the platform offers it (cheapest, inherits warm caches),
else ``forkserver``, else ``spawn``; override with ``REPRO_MP_START``.

**Ordered streaming.**  Cases run through ``imap`` (order-preserving,
chunked by a pool-size heuristic), and every finished row is appended
to the artifact *immediately* — the writer reproduces the exact bytes
of :func:`~repro.results.io.dumps_artifact`, so a streamed artifact
is indistinguishable from a buffered one, but a long sweep shows
progress on disk and never holds every row twice.

**Resume cache.**  With ``resume_dir`` set, each finished case is also
written to a per-case JSON keyed by ``(spec digest, app key, scheme,
seed)``; re-running a partially finished sweep only simulates the
missing cases and merges cached rows back in matrix order.  Because
every case is deterministic in that key, a resumed artifact is
byte-identical to a fresh one.

Results stay bit-identical to a serial run at any ``jobs`` level, fresh
or resumed — guarded by the golden-hash suite in ``tests/perf/``.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import math
import multiprocessing
import os
import re
import sys
import traceback
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.apps.registry import AppRef, get_app
from repro.results.io import COMPACT_THRESHOLD
from repro.scenarios.runner import case_to_dict, run_case, scheme_factory
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry.timeline import dumps_timeline
from repro.util.simlog import get_logger

#: Executor observability (monotone counters; tests and the perf suite
#: read these — nothing here ever reaches an artifact).
stats: Dict[str, int] = {
    "pool_creates": 0,
    "pool_reuses": 0,
    "pool_rebuilds": 0,
    "cache_hits": 0,
    "cache_misses": 0,
    "cases_run": 0,
    "case_retries": 0,
    "case_errors": 0,
}


_code_token_cache: Optional[str] = None


def _code_token(root: Optional[str] = None) -> str:
    """Best-effort identity of the simulator *code*: a digest over every
    package source file's (path, size, mtime).

    Folded into :func:`spec_digest` so a persistent resume cache can
    never silently merge rows simulated by different code into one
    "fresh" artifact.  Stat-hashing the tree (~a millisecond) catches
    what a git-HEAD token cannot: uncommitted edits, checkouts with
    packed refs, and pip-installed upgrades.  Over-invalidation (a
    `touch` with no content change) just costs a re-simulation.
    """
    global _code_token_cache
    if root is None and _code_token_cache is not None:
        return _code_token_cache
    scan_root = root or os.path.dirname(  # src/repro/scenarios/ -> src/repro
        os.path.dirname(os.path.abspath(__file__)))
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(scan_root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            rel = os.path.relpath(path, scan_root)
            h.update(f"{rel}:{st.st_size}:{st.st_mtime_ns}\n".encode("utf-8"))
    token = h.hexdigest()[:16]
    if root is None:
        _code_token_cache = token
    return token


def spec_digest(spec: ScenarioSpec) -> str:
    """Stable content digest of a spec + the code that interprets it
    (the resume-cache namespace and warm-pool key)."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    payload = canonical + "\n" + _code_token()
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# -- worker side --------------------------------------------------------------
#: The spec this worker process executes; installed once by the pool
#: initializer instead of being pickled into every case payload.
_WORKER_SPEC: Optional[ScenarioSpec] = None
#: Whether this worker runs cases with the invariant harness armed.
_WORKER_VERIFY: bool = False


def _init_worker(spec_dict: Dict[str, Any], verify: bool = False) -> None:
    global _WORKER_SPEC, _WORKER_VERIFY
    if os.environ.get("REPRO_ENABLE_TEST_SCHEMES"):
        # Arm the chaos test schemes in every worker so a spec whose
        # matrix names them validates and executes here too.
        from repro.fabric.testing import ensure_registered
        ensure_registered()
    _WORKER_SPEC = ScenarioSpec.from_dict(spec_dict)
    _WORKER_VERIFY = verify


def _execute_case(
    spec: ScenarioSpec, app: AppRef, scheme: str, seed: int,
    verify: bool = False,
) -> Dict[str, Any]:
    """One case as a sweep payload: the artifact row, plus — when the
    spec opts into telemetry or the sweep is verified — the timeline
    dict / violation dicts riding alongside it (kept out of the row
    itself: the row schema is strict)."""
    result = run_case(spec, app, scheme, seed, verify=verify)
    row = case_to_dict(result)
    if spec.telemetry is None and not verify:
        return row
    payload: Dict[str, Any] = {"row": row}
    if spec.telemetry is not None:
        payload["timeline"] = result.timeline.to_dict()
    if verify:
        payload["violations"] = [v.to_dict() for v in result.violations]
    return payload


def _error_record(exc: BaseException) -> Dict[str, Any]:
    """A JSON-able description of a case failure (type, message, and the
    tail of the traceback — capped so a pathological repr cannot bloat
    run reports or fabric frames)."""
    text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__))
    if len(text) > 4000:
        text = "...\n" + text[-4000:]
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": text,
    }


def _try_execute(
    spec: ScenarioSpec, app: AppRef, scheme: str, seed: int,
    verify: bool = False,
) -> Dict[str, Any]:
    """:func:`_execute_case`, but an exception becomes a structured
    ``{"__error__": ...}`` payload instead of unwinding the sweep.

    Only ``Exception`` is captured: ``KeyboardInterrupt``/``SystemExit``
    (and a SIGKILL, which no handler sees) still tear the process down.
    The sentinel key cannot collide with a real payload — case rows and
    telemetry envelopes never contain dunder keys.
    """
    try:
        return _execute_case(spec, app, scheme, seed, verify=verify)
    except Exception as exc:
        return {"__error__": _error_record(exc)}


def _case_worker(payload: Tuple[AppRef, str, int]) -> Dict[str, Any]:
    app, scheme, seed = payload
    return _try_execute(_WORKER_SPEC, app, scheme, seed, verify=_WORKER_VERIFY)


# -- warm pool ----------------------------------------------------------------
def _start_method() -> str:
    """Preferred multiprocessing start method for this platform.

    ``fork`` is cheapest and inherits the parent's warm import/render
    caches, but it is only trusted on Linux: macOS lists it as
    available, yet forking after the ObjC/Accelerate runtime has
    spawned threads (numpy does) can abort workers — the reason CPython
    made ``spawn`` the darwin default.  Elsewhere ``forkserver`` is the
    safe fast option and ``spawn`` always exists.  Override with
    ``REPRO_MP_START``.
    """
    override = os.environ.get("REPRO_MP_START")
    available = multiprocessing.get_all_start_methods()
    if override:
        if override not in available:
            raise ValueError(
                f"REPRO_MP_START={override!r} not in {available}"
            )
        return override
    preferred = ("fork", "forkserver", "spawn") if sys.platform.startswith(
        "linux") else ("forkserver", "spawn")
    for method in preferred:
        if method in available:
            return method
    return "spawn"  # pragma: no cover - every platform has spawn


#: How often a stalled ``imap`` wakes up to check the pool's pulse.
_POOL_POLL_S = 0.5


class PoolBrokenError(RuntimeError):
    """A pool worker died (SIGKILLed, OOM-killed, segfaulted) while the
    sweep was waiting on it.

    ``multiprocessing.Pool`` silently repopulates the dead worker but
    the in-flight task is *lost* — ``imap`` would block forever.  The
    executor detects the death actively (a result stall plus a changed
    worker pid-set) and raises this instead, so ``run_sweep`` can
    rebuild the pool once and resume from the cases not yet merged.
    """


def _pool_pids(pool) -> frozenset:
    """The pool's current worker pids (changes when a worker dies and
    the pool repopulates it).  Reads a private attribute, so degrade to
    an empty set on pool-like stand-ins that lack it — the watchdog
    then simply never trips."""
    return frozenset(proc.pid for proc in getattr(pool, "_pool", ()))


_pool = None
_pool_key: Optional[Tuple[int, str, str, bool]] = None


def _warm_pool(n_procs: int, spec: ScenarioSpec, digest: str, verify: bool = False):
    """A worker pool primed with ``spec``, reused while it fits.

    A pool with *more* workers than requested is still a hit — resuming
    a mostly-cached sweep (few missing cases) must not tear down the
    warm pool the full sweep built.  Armed (``verify``) and disarmed
    pools never mix: the flag is part of the pool key.
    """
    global _pool, _pool_key
    method = _start_method()
    key = (n_procs, digest, method, verify)
    if _pool is not None and _pool_key is not None:
        have_procs, have_digest, have_method, have_verify = _pool_key
        if (have_digest, have_method, have_verify) == (digest, method, verify) \
                and have_procs >= n_procs:
            stats["pool_reuses"] += 1
            return _pool
    shutdown_pool()
    ctx = multiprocessing.get_context(method)
    _pool = ctx.Pool(
        n_procs, initializer=_init_worker, initargs=(spec.to_dict(), verify)
    )
    _pool_key = key
    stats["pool_creates"] += 1
    return _pool


def shutdown_pool() -> None:
    """Tear the warm pool down (idempotent; registered atexit)."""
    global _pool, _pool_key
    if _pool is not None:
        _pool.terminate()
        _pool.join()
    _pool = None
    _pool_key = None


atexit.register(shutdown_pool)


def _chunksize(n_tasks: int, n_procs: int) -> int:
    """imap chunking: ~4 chunks per worker balances dispatch overhead
    against tail latency from uneven case costs."""
    return max(1, math.ceil(n_tasks / (n_procs * 4)))


# -- resume cache -------------------------------------------------------------
_UNSAFE = re.compile(r"[^A-Za-z0-9._=\[\],+-]")


class CaseCache:
    """One JSON file per finished case, keyed by the sweep's identity.

    The file name is ``<spec digest>/<app key>__<scheme>__<seed>-<key
    hash>.json`` — the readable part is sanitized for the filesystem,
    and the short content hash of the *unsanitized* key makes two
    distinct cases that sanitize alike impossible to collide.  Rows are
    written atomically (tmp + rename) so a killed sweep never leaves a
    torn row behind.  Unreadable entries count as misses.

    Telemetry sweeps also cache each case's timeline as a
    ``*.timeline.json`` sidecar; a resumed telemetry sweep needs both
    halves, so a row whose sidecar is missing counts as a full miss.
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, digest: str, app_key: str, scheme: str, seed: int) -> str:
        raw = f"{app_key}__{scheme}__{seed}"
        tag = hashlib.blake2b(raw.encode("utf-8"), digest_size=6).hexdigest()
        name = f"{_UNSAFE.sub('_', raw)}-{tag}.json"
        return os.path.join(self.root, digest, name)

    def timeline_path(self, digest: str, app_key: str, scheme: str, seed: int) -> str:
        base = self.path(digest, app_key, scheme, seed)
        return base[:-len(".json")] + ".timeline.json"

    #: Paths already warned about, so one corrupt entry logs once per
    #: process — not once per resume attempt.
    _corrupt_warned: set = set()

    @classmethod
    def _read(cls, path: str) -> Optional[Dict]:
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except OSError:
            return None  # absent entry: an ordinary cold miss
        except ValueError:
            # The file exists but is not valid JSON — torn write or
            # disk corruption.  Still a miss (the case just re-runs),
            # but say so once: operators need to distinguish "cold
            # cache" from "my cache directory is rotting".
            if path not in cls._corrupt_warned:
                cls._corrupt_warned.add(path)
                get_logger().warning(
                    "resume cache: corrupt entry treated as a miss "
                    "(will re-simulate): %s", path)
            return None

    @staticmethod
    def _write(path: str, data: Dict) -> None:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(data, fh, sort_keys=True, separators=(",", ":"))
        os.replace(tmp, path)

    def get(self, digest: str, app_key: str, scheme: str, seed: int) -> Optional[Dict]:
        return self._read(self.path(digest, app_key, scheme, seed))

    def put(self, digest: str, app_key: str, scheme: str, seed: int, row: Dict) -> None:
        self._write(self.path(digest, app_key, scheme, seed), row)

    def get_timeline(
        self, digest: str, app_key: str, scheme: str, seed: int
    ) -> Optional[Dict]:
        return self._read(self.timeline_path(digest, app_key, scheme, seed))

    def put_timeline(
        self, digest: str, app_key: str, scheme: str, seed: int, timeline: Dict
    ) -> None:
        self._write(self.timeline_path(digest, app_key, scheme, seed), timeline)


def timeline_filename(app_key: str, scheme: str, seed: int) -> str:
    """Deterministic per-case timeline file name (CaseCache sanitation
    plus collision tag, with the ``.timeline.json`` suffix)."""
    raw = f"{app_key}__{scheme}__{seed}"
    tag = hashlib.blake2b(raw.encode("utf-8"), digest_size=6).hexdigest()
    return f"{_UNSAFE.sub('_', raw)}-{tag}.timeline.json"


def _write_timeline_file(
    dirname: str, app_key: str, scheme: str, seed: int, timeline: Dict[str, Any]
) -> str:
    """Persist one case timeline under ``dirname`` (atomic, canonical
    bytes — serial/parallel/resumed sweeps write identical files)."""
    os.makedirs(dirname, exist_ok=True)
    path = os.path.join(dirname, timeline_filename(app_key, scheme, seed))
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(dumps_timeline(timeline) + "\n")
    os.replace(tmp, path)
    return path


# -- streaming artifact writer ------------------------------------------------
class StreamingSweepWriter:
    """Incremental sweep-artifact writer, byte-identical to
    :func:`~repro.results.io.dumps_artifact` plus trailing newline.

    The canonical layouts put ``"cases"`` first (sorted keys), so rows
    can stream to disk as they finish; the envelope tail (``n_cases``,
    ``scenario``, ``spec``) lands in :meth:`finish`.
    """

    def __init__(self, path: str, compact: bool) -> None:
        dirname = os.path.dirname(path)
        if dirname:
            os.makedirs(dirname, exist_ok=True)
        self.compact = compact
        self._rows = 0
        # Stream into a sidecar and promote atomically on finish: a
        # failed sweep must never destroy a previously complete
        # artifact at the same path (progress is visible in the .tmp).
        self._path = path
        self._tmp = path + ".tmp"
        self._fh: TextIO = open(self._tmp, "w", encoding="utf-8")

    def write_row(self, row: Dict[str, Any]) -> None:
        """Append one case row (called in matrix order)."""
        if self.compact:
            head = '{"cases":[' if self._rows == 0 else ","
            self._fh.write(head + json.dumps(row, sort_keys=True, separators=(",", ":")))
        else:
            head = '{\n  "cases": [\n' if self._rows == 0 else ",\n"
            dumped = json.dumps(row, sort_keys=True, indent=2)
            body = "\n".join("    " + line for line in dumped.splitlines())
            self._fh.write(head + body)
        self._rows += 1

    def finish(self, scenario: str, spec_dict: Dict[str, Any], n_cases: int) -> None:
        """Write the envelope tail and close the file."""
        if self.compact:
            head = '{"cases":[' if self._rows == 0 else ""
            spec_json = json.dumps(spec_dict, sort_keys=True, separators=(",", ":"))
            self._fh.write(
                f'{head}],"n_cases":{n_cases},'
                f'"scenario":{json.dumps(scenario)},"spec":{spec_json}}}\n'
            )
        else:
            # json.dumps renders an empty list inline ("cases": []) but a
            # populated one across lines — match both shapes exactly.
            head = '{\n  "cases": []' if self._rows == 0 else "\n  ]"
            lines = json.dumps(spec_dict, sort_keys=True, indent=2).splitlines()
            spec_json = "\n".join([lines[0]] + ["  " + line for line in lines[1:]])
            self._fh.write(
                f'{head},\n  "n_cases": {n_cases},\n'
                f'  "scenario": {json.dumps(scenario)},\n'
                f'  "spec": {spec_json}\n}}\n'
            )
        self._fh.close()
        os.replace(self._tmp, self._path)

    def abort(self) -> None:
        """Discard the stream (error path); any artifact already at the
        target path survives untouched."""
        if not self._fh.closed:
            self._fh.close()
        try:
            os.unlink(self._tmp)
        except OSError:
            pass


# -- the sweep ----------------------------------------------------------------
def run_sweep(
    spec: ScenarioSpec,
    jobs: int = 1,
    out_path: Optional[str] = None,
    compact: Optional[bool] = None,
    resume_dir: Optional[str] = None,
    max_cases: Optional[int] = None,
    timelines_dir: Optional[str] = None,
    verify: bool = False,
) -> Dict[str, Any]:
    """Run a scenario's matrix, optionally in parallel, resumably.

    ``jobs > 1`` fans missing cases out over the warm process pool; the
    aggregated result is byte-identical to a serial run (case order
    follows the matrix, each case is deterministic in (spec, app,
    scheme, seed)).  ``resume_dir`` enables the case-level resume cache:
    rows already finished by an earlier run of the same spec are loaded
    instead of re-simulated, and fresh rows are persisted as they
    complete.  ``max_cases`` truncates the matrix (a partial sweep —
    with a resume cache this is the "kill half-way" half of a resumable
    run).  With ``out_path`` the artifact streams to disk row by row;
    ``compact`` picks the layout (None = automatic by sweep size, see
    :func:`~repro.results.io.dumps_artifact`).

    With ``spec.telemetry`` set, every case also produces a QoS timeline
    (see :mod:`repro.telemetry`); ``timelines_dir`` persists each one as
    ``<dir>/<app>__<scheme>__<seed>-<tag>.timeline.json``.  Timelines
    travel *beside* the artifact — the returned envelope and the row
    schema are unchanged, so telemetry sweeps aggregate and compare
    through :class:`repro.results.ResultSet` exactly like plain ones.

    With ``verify=True``, every freshly simulated case runs with the
    :class:`~repro.verify.InvariantHarness` armed and the *returned*
    envelope gains a top-level ``"violations"`` list (each entry a
    violation dict tagged with its case's app/scheme/seed).  The
    on-disk artifact and its rows stay byte-identical — the harness is
    observe-only.  Cases satisfied from the resume cache were already
    simulated by an earlier run and are *not* re-verified.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if max_cases is not None and max_cases < 1:
        raise ValueError("max_cases must be >= 1")
    telemetry_on = spec.telemetry is not None
    if timelines_dir is not None and not telemetry_on:
        raise ValueError(
            "timelines_dir requires spec.telemetry (the scenario has no "
            "QoS monitor to produce timelines)"
        )
    # Fail fast on a bad matrix axis (typo'd app/scheme, ill-typed
    # params) before any case burns simulation time.
    for app in spec.matrix.apps:
        get_app(app.name).make_params(app.params)
    for scheme in spec.matrix.schemes:
        scheme_factory(scheme, spec.checkpoint_period_s)
    cases = list(spec.matrix.cases())
    if max_cases is not None:
        cases = cases[:max_cases]

    digest = spec_digest(spec)
    cache = CaseCache(resume_dir) if resume_dir else None
    cached: Dict[int, Dict[str, Any]] = {}
    cached_timelines: Dict[int, Dict[str, Any]] = {}
    if cache is not None:
        for i, (app, scheme, seed) in enumerate(cases):
            row = cache.get(digest, app.key, scheme, seed)
            if row is None:
                continue
            if telemetry_on:
                # A telemetry case is only "done" when both halves
                # persisted; a row without its sidecar re-runs.
                timeline = cache.get_timeline(digest, app.key, scheme, seed)
                if timeline is None:
                    continue
                cached_timelines[i] = timeline
            cached[i] = row
        stats["cache_hits"] += len(cached)
        stats["cache_misses"] += len(cases) - len(cached)
    missing = [(i, case) for i, case in enumerate(cases) if i not in cached]

    if compact is None:
        compact = len(cases) >= COMPACT_THRESHOLD
    writer = StreamingSweepWriter(out_path, compact) if out_path else None

    parallel = jobs > 1 and len(missing) > 1

    def _fresh() -> Iterator[Dict[str, Any]]:
        """Missing-case payloads in matrix order (imap preserves it).

        A dead pool worker (SIGKILL, OOM) would hang ``imap`` forever:
        the pool repopulates the process but the in-flight task is
        lost.  The parallel branch therefore polls with a timeout and
        watches the pool's pid-set — a stall plus a changed pid-set is
        a death, answered by rebuilding the pool *once* and re-running
        the cases not yet yielded (determinism makes re-execution
        free).  A second death aborts the sweep for real.
        """
        if not parallel:
            for _i, (app, scheme, seed) in missing:
                yield _try_execute(spec, app, scheme, seed, verify=verify)
            return
        remaining = [case for _i, case in missing]
        rebuilds = 0
        while remaining:
            n_procs = min(jobs, len(remaining))
            pool = _warm_pool(n_procs, spec, digest, verify)
            pids = _pool_pids(pool)
            results = pool.imap(
                _case_worker, remaining,
                chunksize=_chunksize(len(remaining), n_procs))
            done = 0
            try:
                while done < len(remaining):
                    try:
                        payload = results.next(timeout=_POOL_POLL_S)
                    except multiprocessing.TimeoutError:
                        if _pool_pids(pool) != pids:
                            raise PoolBrokenError(
                                "a pool worker died mid-case; its task is "
                                "lost and the pool must be rebuilt"
                            ) from None
                        continue
                    done += 1
                    yield payload
                return
            except PoolBrokenError:
                stats["pool_rebuilds"] += 1
                shutdown_pool()
                rebuilds += 1
                if rebuilds > 1:
                    raise
                # imap is ordered: everything before `done` was already
                # yielded and merged; re-dispatch only the tail.
                remaining = remaining[done:]

    rows: List[Dict[str, Any]] = []
    violations: List[Dict[str, Any]] = []
    errors: List[Dict[str, Any]] = []
    fresh = _fresh()
    try:
        for i, (app, scheme, seed) in enumerate(cases):
            row = cached.get(i)
            timeline = cached_timelines.get(i)
            if row is None:
                payload = next(fresh)
                if isinstance(payload, dict) and "__error__" in payload:
                    # The case raised instead of producing a row; retry
                    # once in-process (transient failures — a flaky
                    # extension scheme, an OS hiccup — get one more
                    # shot) before reporting it.
                    stats["case_retries"] += 1
                    payload = _try_execute(
                        spec, app, scheme, seed, verify=verify)
                if isinstance(payload, dict) and "__error__" in payload:
                    stats["case_errors"] += 1
                    errors.append({
                        "app": app.key, "scheme": scheme, "seed": seed,
                        "attempts": 2, "error": payload["__error__"],
                    })
                    continue  # failure record only — never an artifact row
                if telemetry_on or verify:
                    row, timeline = payload["row"], payload.get("timeline")
                    for v in payload.get("violations", ()):
                        violations.append(
                            {"app": app.key, "scheme": scheme, "seed": seed, **v}
                        )
                else:
                    row = payload
                stats["cases_run"] += 1
                if cache is not None:
                    cache.put(digest, app.key, scheme, seed, row)
                    if telemetry_on:
                        cache.put_timeline(
                            digest, app.key, scheme, seed, timeline)
            if timeline is not None and timelines_dir is not None:
                _write_timeline_file(
                    timelines_dir, app.key, scheme, seed, timeline)
            rows.append(row)
            if writer is not None:
                writer.write_row(row)
        if writer is not None:
            writer.finish(spec.name, spec.to_dict(), len(rows))
    except BaseException:
        if writer is not None:
            writer.abort()
        if parallel:
            # The abandoned imap leaves queued chunks (or dead workers)
            # behind; a reused pool would hang or lag the next sweep.
            shutdown_pool()
        raise
    envelope = {
        "scenario": spec.name,
        "spec": spec.to_dict(),
        "n_cases": len(rows),
        "cases": rows,
    }
    if verify:
        # Only in the returned dict: the streamed artifact's envelope
        # tail never grows keys, so verified and plain sweeps write
        # byte-identical files.
        envelope["violations"] = violations
    if errors:
        # Same rule as violations: failure records are run-report
        # material, never artifact bytes (and absent when empty, so
        # clean sweeps round-trip unchanged).
        envelope["errors"] = errors
    return envelope
