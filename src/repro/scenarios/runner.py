"""Scenario execution: single cases, reduced to typed artifact rows.

A scenario's matrix (app × scheme × seed) expands into independent
cases.  Each case builds a fresh :class:`MobiStreamsSystem` seeded via
:class:`~repro.sim.rng.RngRegistry`, arms the scenario's event script,
runs it, and reduces the trace to an artifact row — the schema lives in
:mod:`repro.results.model`; :func:`case_to_type`/:func:`case_to_dict`
are the bridge from a live run.  Cases share nothing and are
deterministic in (spec, app, scheme, seed) — which is what lets
:mod:`repro.scenarios.executor` fan them out over a warm
``multiprocessing`` pool, resume partial sweeps from a case cache, and
stream artifacts, all while staying bit-identical to a serial run.

The sweep/serialization entry points that used to live here
(``run_sweep``, ``dumps_result``) are deprecated shims now; use
:func:`repro.scenarios.executor.run_sweep` and :mod:`repro.results`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.apps.registry import AppRef, AppRefLike, create_app, get_app
from repro.baselines import (
    ActiveStandby,
    DistributedCheckpoint,
    LocalCheckpoint,
    NoFaultTolerance,
)
from repro.checkpoint import MobiStreamsScheme
from repro.core.metrics import MetricsReport
from repro.core.system import MobiStreamsSystem, RegionBuildSpec, SystemConfig
from repro.device.phone import PhoneConfig
from repro.results.io import COMPACT_THRESHOLD, dumps_artifact  # noqa: F401
from repro.results.model import CaseResult as ArtifactCase
from repro.scenarios.events import EventDirector
from repro.scenarios.spec import ScenarioSpec
from repro.telemetry import QoSMonitor, TelemetrySnapshot, Timeline


#: Extra scheme labels registered at runtime (fault-injection fixtures,
#: experiment variants).  Factories here take no arguments; they shadow
#: nothing — built-in labels stay first and cannot be overridden.
_EXTRA_SCHEMES: Dict[str, Callable] = {}


def register_scheme(label: str, factory: Callable) -> None:
    """Add a scheme label to the comparison set at runtime.

    ``factory`` is a zero-argument callable producing a fresh scheme
    instance per case.  Built-in labels cannot be shadowed; registering
    an already-registered extra label raises too (unregister first).
    """
    if label in scheme_factories() or label in _EXTRA_SCHEMES:
        raise ValueError(f"scheme label {label!r} is already registered")
    _EXTRA_SCHEMES[label] = factory


def unregister_scheme(label: str) -> None:
    """Remove a runtime-registered scheme label (unknown labels are a
    no-op so teardown paths can call this unconditionally)."""
    _EXTRA_SCHEMES.pop(label, None)


def scheme_factories(checkpoint_period_s: float = 300.0) -> Dict[str, Callable]:
    """The Section IV-B comparison set, keyed by figure label.

    ``checkpoint_period_s`` drives the periodic baselines; MobiStreams
    takes its period from the controller's checkpoint clock instead.
    Runtime-registered extras (:func:`register_scheme`) appear after the
    built-ins.
    """
    factories: Dict[str, Callable] = {
        "base": NoFaultTolerance,
        "rep-2": lambda: ActiveStandby(2),
        "local": lambda: LocalCheckpoint(period_s=checkpoint_period_s),
        "dist-1": lambda: DistributedCheckpoint(1, period_s=checkpoint_period_s),
        "dist-2": lambda: DistributedCheckpoint(2, period_s=checkpoint_period_s),
        "dist-3": lambda: DistributedCheckpoint(3, period_s=checkpoint_period_s),
        "ms-8": MobiStreamsScheme,
    }
    factories.update(_EXTRA_SCHEMES)
    return factories


def scheme_factory(scheme: str, checkpoint_period_s: float = 300.0) -> Callable:
    """One scheme's factory; unknown names raise with the known labels."""
    factories = scheme_factories(checkpoint_period_s)
    try:
        return factories[scheme]
    except KeyError:
        known = ", ".join(factories)
        raise ValueError(
            f"unknown scheme {scheme!r}; known schemes: {known}"
        ) from None


def app_factory(app: AppRefLike):
    """Back-compat shim: a fresh-AppSpec factory for any app ref.

    New code should use :func:`repro.apps.registry.create_app`; this
    keeps the historical ``app_factory("bcp")()`` call shape working.
    """
    ref = AppRef.coerce(app)
    entry = get_app(ref.name)  # raises ValueError naming the known apps
    return lambda: entry.create(ref)


@dataclass
class CaseResult:
    """One executed (app, scheme, seed) case of a scenario.

    ``app`` is the ref's deterministic case key (``"bcp"``, or
    ``"edgeml[n_stages=2]"`` for parameterized refs).
    """

    scenario: str
    app: str
    scheme: str
    seed: int
    report: MetricsReport
    region_stopped: List[bool]
    #: The sampled QoS timeline (None unless ``spec.telemetry`` is set).
    #: Lives beside — never inside — the artifact row: rows keep the
    #: strict :mod:`repro.results.model` schema.
    timeline: Optional[Timeline] = None
    #: Invariant violations found by the armed harness (empty unless the
    #: case ran with ``verify=True``).  Like the timeline, these live
    #: beside the artifact row, never inside it.
    violations: tuple = ()

    @property
    def recoveries(self) -> int:
        return self.report.recoveries


def build_system(
    spec: ScenarioSpec, app: AppRefLike, scheme: str, seed: int
) -> MobiStreamsSystem:
    """A fresh deployment for one case of ``spec``."""
    region_builds: Optional[List[Optional[RegionBuildSpec]]] = None
    if spec.regions:
        region_builds = []
        for r in spec.regions:
            phone_cfg = (
                PhoneConfig(cpu_speed=r.cpu_speed) if r.cpu_speed != 1.0 else None
            )
            region_builds.append(RegionBuildSpec(
                phones=r.phones, idle=r.idle, phone=phone_cfg,
                charge_fraction=r.charge_fraction,
            ))
    sys_cfg = SystemConfig(
        n_regions=spec.n_regions,
        phones_per_region=spec.phones_per_region,
        idle_per_region=spec.idle_per_region,
        master_seed=seed,
        checkpoint_period_s=spec.checkpoint_period_s,
        region_builds=region_builds,
        device_backend=spec.device_backend,
    )
    return MobiStreamsSystem(
        sys_cfg,
        create_app(app),
        scheme_factory(scheme, spec.checkpoint_period_s),
    )


def run_case(
    spec: ScenarioSpec,
    app: AppRefLike,
    scheme: str,
    seed: int,
    on_snapshot: Optional[Callable[[TelemetrySnapshot], None]] = None,
    verify: bool = False,
) -> CaseResult:
    """Build, script, run, and measure one case.

    With ``spec.telemetry`` set, a :class:`~repro.telemetry.QoSMonitor`
    samples the run and the result carries its timeline;
    ``on_snapshot`` streams each live sample (the ``repro watch``
    feed).  The monitor is read-only and draws no randomness, so the
    metrics row is identical with telemetry on or off.

    With ``verify=True``, a :class:`~repro.verify.InvariantHarness`
    observes the run and the result carries any violations.  The
    harness, like the monitor, is observe-only and draws no
    randomness — the artifact row is byte-identical either way.
    """
    app_key = AppRef.coerce(app).key
    system = build_system(spec, app, scheme, seed)
    harness = None
    if verify:
        from repro.verify.harness import InvariantHarness

        harness = InvariantHarness(system)
        harness.start()
    monitor: Optional[QoSMonitor] = None
    if spec.telemetry is not None:
        monitor = QoSMonitor(
            system.sim, system.trace, interval_s=spec.telemetry.interval_s,
            meta={"scenario": spec.name, "app": app_key,
                  "scheme": scheme, "seed": seed},
        )
        if on_snapshot is not None:
            monitor.add_callback(on_snapshot)
        system.attach_telemetry(monitor)
        monitor.start()
    director = EventDirector(system, spec)
    director.install()
    system.start()
    director.schedule()
    system.run(spec.duration_s)
    if monitor is not None:
        monitor.finish()
    if harness is not None:
        harness.finish()
    report = system.metrics(warmup_s=spec.warmup_s)
    return CaseResult(
        scenario=spec.name,
        app=app_key,
        scheme=scheme,
        seed=seed,
        report=report,
        region_stopped=[r.stopped for r in system.regions],
        timeline=monitor.timeline() if monitor is not None else None,
        violations=tuple(harness.violations) if harness is not None else (),
    )


def case_to_type(result: CaseResult) -> ArtifactCase:
    """The artifact-typed form of a live case result (the schema lives
    in :mod:`repro.results.model`; this is the bridge from a run)."""
    return ArtifactCase.from_report(
        scenario=result.scenario,
        app=result.app,
        scheme=result.scheme,
        seed=result.seed,
        report=result.report,
        region_stopped=result.region_stopped,
    )


def case_to_dict(result: CaseResult) -> Dict[str, Any]:
    """JSON-ready metrics for one case (stable, timestamp-free)."""
    return case_to_type(result).to_dict()


def run_sweep(spec: ScenarioSpec, *args, **kwargs) -> Dict[str, Any]:
    """Deprecated shim: the sweep machinery lives in
    :func:`repro.scenarios.executor.run_sweep` (warm pool, resume
    cache, streaming artifacts); consume the returned dict through
    :class:`repro.results.ResultSet`."""
    warnings.warn(
        "repro.scenarios.runner.run_sweep is deprecated; call "
        "repro.scenarios.executor.run_sweep (re-exported as "
        "repro.scenarios.run_sweep) and analyze artifacts with "
        "repro.results.ResultSet",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.scenarios.executor import run_sweep as _run_sweep

    return _run_sweep(spec, *args, **kwargs)


def dumps_result(result: Dict[str, Any], compact: Optional[bool] = None) -> str:
    """Deprecated shim for the canonical artifact serialization, which
    lives in :func:`repro.results.io.dumps_artifact` now (use
    :meth:`repro.results.ResultSet.to_json` for typed sets)."""
    warnings.warn(
        "repro.scenarios.runner.dumps_result is deprecated; use "
        "repro.results.dumps_artifact or ResultSet.to_json",
        DeprecationWarning,
        stacklevel=2,
    )
    return dumps_artifact(result, compact=compact)
