"""Fig. 8: relative throughput/latency of every FT scheme, no faults.

Values are normalized to the ``base`` (no fault tolerance) system, as in
the paper.  The headline claim to reproduce: versus rep-2 and dist-n,
MobiStreams averages ≈ +230% throughput and ≈ −40% latency; ``local``
(the unrealistic upper bound) sits closest to base, and dist-n degrades
monotonically with n.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import (
    ExperimentConfig,
    ExperimentOutcome,
    format_table,
    run_experiment,
)
from repro.results import ResultSet

#: Paper's relative latency bars (base = 1.0). Throughput bars are OCR-
#: ambiguous in our source; the target ordering is
#: local >= ms-8 > dist-1 > dist-2 > dist-3 >= rep-2.
PAPER_LATENCY = {
    "signalguru": {"base": 1.0, "rep-2": 1.63, "local": 1.01, "dist-1": 1.32,
                   "dist-2": 1.48, "dist-3": 1.59, "ms-8": 1.08},
    "bcp": {"base": 1.0, "rep-2": 3.17, "local": 1.01, "dist-1": 1.89,
            "dist-2": 2.39, "dist-3": 2.85, "ms-8": 1.17},
}

SCHEME_ORDER = ["base", "rep-2", "local", "dist-1", "dist-2", "dist-3", "ms-8"]


def run_fig8(app_name: str, duration_s: float = 1200.0,
             warmup_s: float = 150.0, seed: int = 3,
             checkpoint_period_s: float = 300.0) -> Dict[str, ExperimentOutcome]:
    """One fault-free run per scheme."""
    out: Dict[str, ExperimentOutcome] = {}
    for label in SCHEME_ORDER:
        out[label] = run_experiment(ExperimentConfig(
            app=app_name, scheme=label, duration_s=duration_s,
            warmup_s=warmup_s, seed=seed,
            checkpoint_period_s=checkpoint_period_s,
        ))
    return out


def relative(outcomes: Dict[str, ExperimentOutcome]) -> Dict[str, Dict[str, float]]:
    """Normalize to base, as the figure does (via the results API).

    The outcome labels become the comparison axis — normally they *are*
    the scheme names, but any labelling works (the cases are re-keyed),
    so ad-hoc comparisons can normalize against whatever they like.
    """
    rs = ResultSet.from_cases(
        o.case.replace(scheme=label) for label, o in outcomes.items()
    )
    return rs.relative_to("base", axis="scheme",
                          metrics=("throughput", "latency"))


def report(duration_s: float = 1200.0) -> str:
    """The printable Fig. 8 reproduction (tables + bar charts)."""
    from repro.bench.plots import fig8_chart

    sections: List[str] = []
    for app_name in ("bcp", "signalguru"):
        outcomes = run_fig8(app_name, duration_s)
        rel = relative(outcomes)
        rows = []
        for label in SCHEME_ORDER:
            rows.append([
                label,
                f"{rel[label]['throughput'] * 100:.0f}%",
                f"{PAPER_LATENCY[app_name][label]:.2f}x",
                f"{rel[label]['latency']:.2f}x",
                f"{outcomes[label].throughput:.3f}",
                f"{outcomes[label].latency:.1f}",
            ])
        sections.append(format_table(
            ["scheme", "rel tput (meas)", "rel lat (paper)", "rel lat (meas)",
             "abs tput t/s", "abs lat s"],
            rows, title=f"Fig. 8 — {app_name} (normalized to base)",
        ))
        sections.append(fig8_chart(rel, app_name, SCHEME_ORDER))
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover
    print(report())
