"""Fig. 9: performance when n nodes fail or depart within one period.

Reproduced findings:

1. MobiStreams' failure-recovery overhead is ~constant in n (every phone
   holds the MRC + preserved input, so a 7-node burst restores like a
   1-node one) — a flat curve.
2. dist-n's curve has only n+1 points (unrecoverable beyond n) and
   degrades as n rises; rep-2's curve has 2 points.
3. MobiStreams departures cost less than failures (state transfer, no
   restore/catch-up) until many simultaneous departures contend for the
   shared cellular uplink.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.harness import ExperimentConfig, format_table, run_experiment

#: Scheme -> maximum simultaneous failures it tolerates (None = all).
TOLERANCE = {"rep-2": 1, "dist-1": 1, "dist-2": 2, "dist-3": 3, "ms-8": None}

#: Fail the non-source phones first (indices into region0.pN).
FAIL_ORDER = [3, 4, 5, 6, 2, 7, 1, 0]


def run_fig9_point(
    app_name: str, scheme: str, n: int, mode: str = "fail",
    duration_s: float = 900.0, fault_time: float = 450.0, seed: int = 3,
) -> Optional[Tuple[float, float, bool]]:
    """One (scheme, n) point; returns (tput, latency, recovered)."""
    idxs = FAIL_ORDER[:n]
    cfg = ExperimentConfig(
        app=app_name, scheme=scheme, duration_s=duration_s, seed=seed,
        idle_per_region=8,  # the region has spare phones to promote
        crash=(fault_time, idxs) if (mode == "fail" and n) else None,
        depart=(fault_time, idxs) if (mode == "depart" and n) else None,
    )
    case = run_experiment(cfg).case
    return case.throughput, case.latency_s, not case.stopped


def run_fig9(app_name: str, duration_s: float = 900.0,
             max_n: int = 8) -> Dict[str, List[Tuple[int, float, float, bool]]]:
    """All curves for one application.

    Returns scheme -> list of (n, rel_tput, rel_latency, recovered); the
    per-scheme n=0 point is each curve's own normalizer, matching the
    paper's relative axes.
    """
    curves: Dict[str, List[Tuple[int, float, float, bool]]] = {}
    for scheme, tol in TOLERANCE.items():
        series = []
        base_t = base_l = None
        limit = max_n if tol is None else tol
        for n in range(0, limit + 1):
            point = run_fig9_point(app_name, scheme, n, "fail", duration_s)
            tput, lat, ok = point
            if n == 0:
                base_t, base_l = max(tput, 1e-9), max(lat, 1e-9)
            series.append((n, tput / base_t, lat / base_l, ok))
        curves[f"{scheme} failure"] = series
    # Departures: only MobiStreams handles them.
    series = []
    base_t = base_l = None
    for n in range(0, max_n + 1):
        tput, lat, ok = run_fig9_point(app_name, "ms-8", n, "depart", duration_s)
        if n == 0:
            base_t, base_l = max(tput, 1e-9), max(lat, 1e-9)
        series.append((n, tput / base_t, lat / base_l, ok))
    curves["ms-8 departure"] = series
    return curves


def report(app_names=("bcp", "signalguru"), duration_s: float = 900.0,
           max_n: int = 8) -> str:
    """The printable Fig. 9 reproduction."""
    sections = []
    for app_name in app_names:
        curves = run_fig9(app_name, duration_s, max_n)
        rows = []
        for label, series in curves.items():
            for n, rt, rl, ok in series:
                rows.append([
                    label, n, f"{rt * 100:.0f}%", f"{rl:.2f}x",
                    "ok" if ok else "UNRECOVERABLE",
                ])
        sections.append(format_table(
            ["curve", "n", "rel tput", "rel lat", "outcome"],
            rows, title=f"Fig. 9 — {app_name} (n nodes fail/leave in one period)",
        ))
        from repro.bench.plots import fig9_chart

        sections.append(fig9_chart(curves, app_name, "throughput"))
        sections.append(fig9_chart(curves, app_name, "latency"))
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover
    print(report())
