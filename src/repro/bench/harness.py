"""Shared experiment runner for all benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.apps import BCPApp, SignalGuruApp
from repro.baselines import (
    ActiveStandby,
    DistributedCheckpoint,
    LocalCheckpoint,
    NoFaultTolerance,
)
from repro.checkpoint import MobiStreamsScheme
from repro.core.metrics import MetricsReport
from repro.core.system import MobiStreamsSystem, SystemConfig


def scheme_factories(checkpoint_period_s: float = 300.0) -> Dict[str, Callable]:
    """The Section IV-B comparison set, keyed by figure label.

    ``checkpoint_period_s`` drives the periodic baselines; MobiStreams
    takes its period from the controller's checkpoint clock instead.
    """
    return {
        "base": NoFaultTolerance,
        "rep-2": lambda: ActiveStandby(2),
        "local": lambda: LocalCheckpoint(period_s=checkpoint_period_s),
        "dist-1": lambda: DistributedCheckpoint(1, period_s=checkpoint_period_s),
        "dist-2": lambda: DistributedCheckpoint(2, period_s=checkpoint_period_s),
        "dist-3": lambda: DistributedCheckpoint(3, period_s=checkpoint_period_s),
        "ms-8": MobiStreamsScheme,
    }


def app_factory(app_name: str):
    """'bcp' or 'signalguru' -> a fresh AppSpec factory."""
    if app_name == "bcp":
        return BCPApp
    if app_name == "signalguru":
        return SignalGuruApp
    raise ValueError(f"unknown app {app_name!r}")


@dataclass
class ExperimentConfig:
    """One simulated deployment run."""

    app: str = "bcp"
    scheme: str = "base"
    duration_s: float = 900.0
    warmup_s: float = 150.0
    seed: int = 3
    n_regions: int = 1
    phones_per_region: int = 8
    idle_per_region: int = 2
    checkpoint_period_s: float = 300.0
    #: Phones crashing simultaneously: (time, [phone indices]).
    crash: Optional[tuple] = None
    #: Phones departing simultaneously: (time, [phone indices]).
    depart: Optional[tuple] = None


@dataclass
class ExperimentOutcome:
    """Metrics plus run context."""

    config: ExperimentConfig
    report: MetricsReport
    region_stopped: bool
    recoveries: int

    @property
    def throughput(self) -> float:
        """First-region steady throughput (tuples/s)."""
        return self.report.per_region["region0"].throughput_tps

    @property
    def latency(self) -> float:
        """First-region mean latency (s)."""
        return self.report.per_region["region0"].mean_latency_s


def run_experiment(cfg: ExperimentConfig) -> ExperimentOutcome:
    """Build, run, and measure one deployment."""
    sys_cfg = SystemConfig(
        n_regions=cfg.n_regions,
        phones_per_region=cfg.phones_per_region,
        idle_per_region=cfg.idle_per_region,
        master_seed=cfg.seed,
        checkpoint_period_s=cfg.checkpoint_period_s,
    )
    system = MobiStreamsSystem(
        sys_cfg,
        app_factory(cfg.app)(),
        scheme_factories(cfg.checkpoint_period_s)[cfg.scheme],
    )
    system.start()
    if cfg.crash is not None:
        t, idxs = cfg.crash
        system.injector.crash_at(t, [f"region0.p{i}" for i in idxs])
    if cfg.depart is not None:
        t, idxs = cfg.depart
        for i in idxs:
            system.sim.call_at(t, lambda i=i: system.apply_departure(f"region0.p{i}"))
    system.run(cfg.duration_s)
    report = system.metrics(warmup_s=cfg.warmup_s)
    return ExperimentOutcome(
        config=cfg,
        report=report,
        region_stopped=system.regions[0].stopped,
        recoveries=report.recoveries,
    )


def format_table(headers: Sequence[str], rows: List[Sequence], title: str = "") -> str:
    """Plain-text table (paper-vs-measured reports)."""
    cols = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            cols[i].append(cell if isinstance(cell, str) else f"{cell}")
    widths = [max(len(c) for c in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        cells = [
            (cell if isinstance(cell, str) else str(cell)).ljust(w)
            for cell, w in zip(row, widths)
        ]
        lines.append(" | ".join(cells))
    return "\n".join(lines)
