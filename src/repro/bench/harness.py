"""Shared experiment runner for all benches.

Since the scenario engine landed, :class:`ExperimentConfig` is a thin
adapter: it describes the classic single-app, single-scheme bench run
and compiles to a :class:`~repro.scenarios.spec.ScenarioSpec`
(:meth:`ExperimentConfig.to_scenario`), which
:mod:`repro.scenarios.runner` executes.  The scheme/app factories live
in the runner and are re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.apps.registry import AppRef, AppRefLike
from repro.core.metrics import MetricsReport
from repro.results.model import CaseResult
from repro.scenarios.runner import (  # noqa: F401  (compat re-exports)
    app_factory,
    case_to_type,
    run_case,
    scheme_factories,
    scheme_factory,
)
from repro.scenarios.spec import EventSpec, MatrixSpec, ScenarioSpec, TelemetrySpec
from repro.telemetry import Timeline
from repro.util.tables import format_table  # noqa: F401  (compat re-export)

#: One timed fault: (time, [phone indices]).
FaultTuple = Tuple[float, List[int]]
#: A fault field accepts nothing, one fault, or a list of timed faults.
FaultSpec = Union[None, FaultTuple, List[FaultTuple]]


def _normalize_faults(value: FaultSpec) -> List[FaultTuple]:
    """Back-compat: a bare ``(time, [idxs])`` tuple still works; a list
    (or tuple) of such tuples scripts several timed fault events."""
    if value is None:
        return []
    if isinstance(value, tuple) and len(value) == 2 and isinstance(
        value[0], (int, float)
    ):
        return [value]
    return [tuple(v) for v in value]


@dataclass
class ExperimentConfig:
    """One simulated deployment run.

    ``app`` is any app ref: a registered name or a parameterized
    ``{"name": ..., "params": {...}}`` mapping (see
    :mod:`repro.apps.registry`).
    """

    app: AppRefLike = "bcp"
    scheme: str = "base"
    duration_s: float = 900.0
    warmup_s: float = 150.0
    seed: int = 3
    n_regions: int = 1
    phones_per_region: int = 8
    idle_per_region: int = 2
    checkpoint_period_s: float = 300.0
    #: Crash events: ``(time, [phone indices])`` or a list of them.
    crash: FaultSpec = None
    #: Departure events: ``(time, [phone indices])`` or a list of them.
    depart: FaultSpec = None
    #: Sample live QoS telemetry every this-many simulated seconds
    #: (None = off; the outcome then carries no timeline).
    telemetry_interval_s: Optional[float] = None

    @property
    def crash_events(self) -> List[FaultTuple]:
        """Crash faults as a normalized list of (time, indices)."""
        return _normalize_faults(self.crash)

    @property
    def depart_events(self) -> List[FaultTuple]:
        """Departure faults as a normalized list of (time, indices)."""
        return _normalize_faults(self.depart)

    def to_scenario(self) -> ScenarioSpec:
        """Compile to the equivalent single-case scenario spec."""
        events = [
            EventSpec(kind="crash", time=t, region=0, phones=tuple(idxs))
            for t, idxs in self.crash_events
        ] + [
            EventSpec(kind="depart", time=t, region=0, phones=tuple(idxs))
            for t, idxs in self.depart_events
        ]
        return ScenarioSpec(
            name=f"bench-{AppRef.coerce(self.app).key}-{self.scheme}",
            duration_s=self.duration_s,
            warmup_s=self.warmup_s,
            n_regions=self.n_regions,
            phones_per_region=self.phones_per_region,
            idle_per_region=self.idle_per_region,
            checkpoint_period_s=self.checkpoint_period_s,
            events=tuple(events),
            matrix=MatrixSpec(
                apps=(self.app,), schemes=(self.scheme,), seeds=(self.seed,)
            ),
            telemetry=(
                None if self.telemetry_interval_s is None
                else TelemetrySpec(interval_s=self.telemetry_interval_s)
            ),
        )


@dataclass
class ExperimentOutcome:
    """Metrics plus run context.

    ``case`` is the artifact-typed :class:`repro.results.CaseResult` —
    the same row a sweep would write for this run — so outcomes plug
    straight into :class:`repro.results.ResultSet` queries; ``report``
    keeps the live :class:`MetricsReport` for simulation-side detail.
    """

    config: ExperimentConfig
    report: MetricsReport
    region_stopped: bool
    recoveries: int
    case: CaseResult
    #: The sampled QoS timeline (None unless the config set
    #: ``telemetry_interval_s``); see :mod:`repro.telemetry`.
    timeline: Optional[Timeline] = None

    @property
    def throughput(self) -> float:
        """First-region steady throughput (tuples/s)."""
        return self.case.throughput

    @property
    def latency(self) -> float:
        """First-region mean latency (s)."""
        return self.case.latency_s


def run_experiment(cfg: ExperimentConfig) -> ExperimentOutcome:
    """Build, run, and measure one deployment."""
    result = run_case(cfg.to_scenario(), cfg.app, cfg.scheme, cfg.seed)
    return ExperimentOutcome(
        config=cfg,
        report=result.report,
        region_stopped=result.region_stopped[0],
        recoveries=result.report.recoveries,
        case=case_to_type(result),
        timeline=result.timeline,
    )


