"""Ablation studies on MobiStreams' design choices.

The paper motivates four design decisions without sweeping them; these
ablations quantify each one on the simulated substrate:

* **Broadcast vs unicast distribution** (Section III-C): one UDP
  broadcast reaches every phone for one airtime cost, while dist-n-style
  unicasts pay per copy — :func:`broadcast_vs_unicast`.
* **The cost/gain stopping rule**: against fixed round counts (including
  0 = pure TCP tree) — :func:`sweep_stopping_rule`.
* **1 KB blocks**: datagrams above the MTU fragment, and one lost
  fragment drops the datagram — :func:`sweep_block_size`.
* **The 5-minute checkpoint period** (Section III-D: "catch-up time
  varies with the checkpoint period") — :func:`sweep_checkpoint_period`.

Each function returns a list of result-dict rows; ``report_*`` helpers
render the paper-style text tables.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentConfig, format_table, run_experiment
from repro.checkpoint.broadcast import BroadcastSettings, broadcast_checkpoint
from repro.net.loss import BernoulliLoss
from repro.net.packet import Message
from repro.net.wifi import Unreachable, WifiCell, WifiConfig
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry
from repro.util.units import KB, MB, Mbps


# -- standalone broadcast rig ---------------------------------------------------
def _make_cell(n_receivers: int, loss: float, bandwidth_mbps: float = 2.0,
               seed: int = 11) -> tuple:
    """A fresh cell with one sender and ``n_receivers`` receivers."""
    sim = Simulator()
    rng = RngRegistry(seed)
    cfg = WifiConfig(
        bandwidth_bps=Mbps(bandwidth_mbps),
        loss_factory=lambda: BernoulliLoss(loss),
        mean_loss=loss,
    )
    cell = WifiCell(sim, rng, cfg, name="ablate")
    cell.join("sender", lambda msg: None)
    for i in range(n_receivers):
        cell.join(f"rx{i}", lambda msg: None)
    return sim, cell


def _run_broadcast(sim: Simulator, cell: WifiCell, size: int,
                   settings: Optional[BroadcastSettings] = None):
    """Drive one broadcast_checkpoint to completion; return its outcome."""
    box: Dict[str, Any] = {}

    def runner():
        out = yield from broadcast_checkpoint(
            sim, cell, "sender", size, settings=settings)
        box["out"] = out

    sim.process(runner(), name="ablate.bcast").defuse()
    sim.run()
    return box["out"]


def _run_unicasts(sim: Simulator, cell: WifiCell, size: int,
                  receivers: Sequence[str]) -> Dict[str, float]:
    """dist-n-style distribution: one reliable unicast per receiver."""
    stats = {"bytes": 0.0, "duration": 0.0}

    def runner():
        t0 = sim.now
        for rx in receivers:
            msg = Message(src="sender", dst=rx, size=size, kind="ckpt_copy",
                          payload=("copy",))
            try:
                yield from cell.tcp_unicast(msg)
            except Unreachable:  # pragma: no cover - receivers are static
                continue
            stats["bytes"] += size
        stats["duration"] = sim.now - t0

    sim.process(runner(), name="ablate.uni").defuse()
    sim.run()
    return stats


# -- ablation 1: broadcast vs unicast -----------------------------------------------
def broadcast_vs_unicast(
    n_receivers_list: Sequence[int] = (1, 2, 4, 7, 9),
    size: int = 4 * MB,
    loss: float = 0.08,
    seed: int = 11,
) -> List[Dict[str, float]]:
    """Network bytes to place one checkpoint on n receivers, both ways.

    The crossover the paper's design banks on: unicast cost grows ~n·size
    while broadcast cost is ~size·(1 + loss overhead), so broadcast wins
    from n = 2 on.
    """
    rows = []
    for n in n_receivers_list:
        sim, cell = _make_cell(n, loss, seed=seed)
        out = _run_broadcast(sim, cell, size)
        sim_u, cell_u = _make_cell(n, loss, seed=seed)
        uni = _run_unicasts(sim_u, cell_u, size,
                            [f"rx{i}" for i in range(n)])
        rows.append({
            "n_receivers": n,
            "broadcast_bytes": float(out.network_bytes),
            "unicast_bytes": uni["bytes"],
            "ratio": uni["bytes"] / max(1.0, float(out.network_bytes)),
            "broadcast_s": out.duration,
            "unicast_s": uni["duration"],
        })
    return rows


# -- ablation 2: the stopping rule ---------------------------------------------------
def sweep_stopping_rule(
    rounds_options: Sequence[Optional[int]] = (None, 0, 1, 2, 4, 8),
    size: int = 4 * MB,
    n_receivers: int = 7,
    loss: float = 0.08,
    seed: int = 11,
) -> List[Dict[str, float]]:
    """Total bytes and duration per stopping rule (None = cost/gain)."""
    rows = []
    for rounds in rounds_options:
        sim, cell = _make_cell(n_receivers, loss, seed=seed)
        settings = BroadcastSettings(udp_rounds=rounds)
        out = _run_broadcast(sim, cell, size, settings)
        rows.append({
            "rule": "cost/gain" if rounds is None else f"fixed-{rounds}",
            "udp_rounds": len(out.rounds),
            "udp_bytes": float(out.udp_bytes),
            "tcp_bytes": float(out.tcp_bytes),
            "total_bytes": float(out.network_bytes),
            "duration_s": out.duration,
            "all_complete": out.all_complete,
        })
    return rows


# -- ablation 3: block size ---------------------------------------------------------
def sweep_block_size(
    block_sizes: Sequence[int] = (256, KB, 4 * KB, 16 * KB, 64 * KB),
    size: int = 4 * MB,
    n_receivers: int = 7,
    loss: float = 0.02,
    seed: int = 11,
) -> List[Dict[str, float]]:
    """Effect of the UDP block size (Section III-C's 1 KB choice).

    Tiny blocks pay per-datagram header overhead; big blocks fragment at
    the MTU and a single lost fragment drops the whole block.  1 KB sits
    near the sweet spot.
    """
    rows = []
    for bs in block_sizes:
        sim, cell = _make_cell(n_receivers, loss, seed=seed)
        out = _run_broadcast(sim, cell, size, BroadcastSettings(block_size=bs))
        rows.append({
            "block_size": bs,
            "total_bytes": float(out.network_bytes),
            "udp_bytes": float(out.udp_bytes),
            "tcp_bytes": float(out.tcp_bytes),
            "duration_s": out.duration,
            "overhead": float(out.network_bytes) / size,
        })
    return rows


# -- ablation 4: loss-rate sensitivity -------------------------------------------------
def sweep_loss(
    loss_rates: Sequence[float] = (0.0, 0.02, 0.08, 0.2, 0.4),
    size: int = 4 * MB,
    n_receivers: int = 7,
    seed: int = 11,
) -> List[Dict[str, float]]:
    """Broadcast cost as the channel degrades."""
    rows = []
    for loss in loss_rates:
        sim, cell = _make_cell(n_receivers, loss, seed=seed)
        out = _run_broadcast(sim, cell, size)
        rows.append({
            "loss": loss,
            "udp_rounds": len(out.rounds),
            "total_bytes": float(out.network_bytes),
            "overhead": float(out.network_bytes) / size,
            "duration_s": out.duration,
        })
    return rows


# -- ablation 5: burstiness at fixed mean loss ------------------------------------------
def sweep_burstiness(
    burst_lengths: Sequence[float] = (1.0, 4.0, 16.0, 64.0),
    mean_loss: float = 0.08,
    size: int = 4 * MB,
    n_receivers: int = 7,
    seed: int = 11,
) -> List[Dict[str, float]]:
    """Bursty (Gilbert-Elliott) vs i.i.d. loss at the same mean rate.

    Real radio fades are bursty; a burst concentrates a receiver's
    misses on contiguous blocks instead of spreading them, which changes
    how fast the ANDed-bitmap retransmission set shrinks.
    ``burst_length = 1`` is effectively i.i.d.
    """
    from repro.net.loss import GilbertElliottLoss

    rows = []
    for burst in burst_lengths:
        sim = Simulator()
        rng = RngRegistry(seed)
        cfg = WifiConfig(
            bandwidth_bps=Mbps(2.0),
            loss_factory=lambda b=burst: GilbertElliottLoss.from_mean(
                mean_loss=mean_loss, mean_burst=b),
            mean_loss=mean_loss,
        )
        cell = WifiCell(sim, rng, cfg, name="ablate")
        cell.join("sender", lambda msg: None)
        for i in range(n_receivers):
            cell.join(f"rx{i}", lambda msg: None)
        out = _run_broadcast(sim, cell, size)
        rows.append({
            "mean_burst": burst,
            "udp_rounds": len(out.rounds),
            "total_bytes": float(out.network_bytes),
            "overhead": float(out.network_bytes) / size,
            "duration_s": out.duration,
        })
    return rows


# -- ablation 6: checkpoint period ----------------------------------------------------
def sweep_checkpoint_period(
    periods_s: Sequence[float] = (60.0, 150.0, 300.0, 600.0),
    app_name: str = "bcp",
    duration_s: float = 1800.0,
    crash_at: float = 1200.0,
    seed: int = 3,
) -> List[Dict[str, float]]:
    """Steady overhead vs recovery cost across checkpoint periods.

    Longer periods mean fewer broadcasts (lower steady network cost) but
    more preserved input to replay: "the catch-up time should be no more
    than a checkpoint period" (Section III-D).
    """
    rows = []
    for period in periods_s:
        case = run_experiment(ExperimentConfig(
            app=app_name, scheme="ms-8", duration_s=duration_s,
            warmup_s=duration_s / 6.0, seed=seed, idle_per_region=4,
            checkpoint_period_s=period, crash=(crash_at, [3]),
        )).case
        rows.append({
            "period_s": period,
            "throughput": case.throughput,
            "latency_s": case.latency_s,
            "preserved_bytes": case.preserved_bytes,
            "ft_network_bytes": case.ft_network_bytes,
            "recoveries": case.recoveries,
        })
    return rows


# -- reports -----------------------------------------------------------------------
def report() -> str:
    """All ablations as text tables (mirrors ``repro.bench.run_all``)."""
    sections = []

    rows = broadcast_vs_unicast()
    sections.append(format_table(
        ["receivers", "broadcast MB", "unicast MB", "unicast/broadcast"],
        [[r["n_receivers"], f"{r['broadcast_bytes'] / MB:.2f}",
          f"{r['unicast_bytes'] / MB:.2f}", f"{r['ratio']:.2f}x"] for r in rows],
        title="Ablation — broadcast vs unicast checkpoint distribution",
    ))

    rows = sweep_stopping_rule()
    sections.append(format_table(
        ["rule", "udp rounds", "udp MB", "tcp MB", "total MB", "duration s"],
        [[r["rule"], r["udp_rounds"], f"{r['udp_bytes'] / MB:.2f}",
          f"{r['tcp_bytes'] / MB:.2f}", f"{r['total_bytes'] / MB:.2f}",
          f"{r['duration_s']:.1f}"] for r in rows],
        title="Ablation — UDP stopping rule (cost/gain vs fixed rounds)",
    ))

    rows = sweep_block_size()
    sections.append(format_table(
        ["block B", "total MB", "overhead", "duration s"],
        [[r["block_size"], f"{r['total_bytes'] / MB:.2f}",
          f"{r['overhead']:.2f}x", f"{r['duration_s']:.1f}"] for r in rows],
        title="Ablation — UDP block size (MTU fragmentation vs headers)",
    ))

    rows = sweep_loss()
    sections.append(format_table(
        ["loss", "udp rounds", "total MB", "overhead"],
        [[f"{r['loss']:.2f}", r["udp_rounds"], f"{r['total_bytes'] / MB:.2f}",
          f"{r['overhead']:.2f}x"] for r in rows],
        title="Ablation — loss-rate sensitivity of the broadcast",
    ))

    rows = sweep_burstiness()
    sections.append(format_table(
        ["mean burst", "udp rounds", "total MB", "overhead"],
        [[f"{r['mean_burst']:.0f}", r["udp_rounds"],
          f"{r['total_bytes'] / MB:.2f}", f"{r['overhead']:.2f}x"]
         for r in rows],
        title="Ablation — loss burstiness (Gilbert-Elliott) at 8% mean loss",
    ))

    rows = sweep_checkpoint_period(duration_s=1200.0, crash_at=800.0)
    sections.append(format_table(
        ["period s", "tput t/s", "latency s", "preserved MB", "ckpt-net MB"],
        [[f"{r['period_s']:.0f}", f"{r['throughput']:.3f}",
          f"{r['latency_s']:.1f}", f"{r['preserved_bytes'] / MB:.1f}",
          f"{r['ft_network_bytes'] / MB:.1f}"] for r in rows],
        title="Ablation — checkpoint period (steady cost vs catch-up)",
    ))
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover
    print(report())
