"""Table I: MobiStreams vs the server-based DSPS.

Rows reproduced:

* server-based DSPS per-region throughput/latency band (uplink sweep
  across the paper's measured 0.016∼0.32 Mbps),
* MobiStreams with FT off (``base``),
* MobiStreams + a phone departing every checkpoint period,
* MobiStreams + a phone failing every checkpoint period.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.server_dsps import ServerDSPS, ServerDSPSConfig
from repro.bench.harness import (
    ExperimentConfig,
    app_factory,
    format_table,
    run_experiment,
    scheme_factories,
)
from repro.net.cellular import CellularConfig
from repro.util.units import Mbps

#: Paper values: (throughput band, latency band) per app.
PAPER = {
    "bcp": {
        "server": ((0.011, 0.22), (60, 750)),
        "ms_ft_off": (0.54, 32),
        "ms_departures": (0.52, 36),
        "ms_failures": (0.48, 39),
    },
    "signalguru": {
        "server": ((0.018, 0.36), (40, 540)),
        "ms_ft_off": (0.8, 25),
        "ms_departures": (0.74, 30),
        "ms_failures": (0.64, 36),
    },
}


def run_server_point(app_name: str, uplink_mbps: float, duration_s: float = 900.0,
                     warmup_s: float = 150.0) -> Tuple[float, float]:
    """One server-DSPS run at a fixed per-phone uplink rate."""
    cellular = CellularConfig(
        uplink_phone_bps=(Mbps(uplink_mbps), Mbps(uplink_mbps)),
        uplink_capacity_bps=Mbps(max(1.5, uplink_mbps * 4)),
    )
    dsps = ServerDSPS(
        app_factory(app_name)(),
        ServerDSPSConfig(cellular=cellular, master_seed=3),
    )
    dsps.run(duration_s)
    m = dsps.metrics(warmup_s=warmup_s)
    rm = m.region("dc")
    return rm.throughput_tps, rm.mean_latency_s


def run_table1(app_name: str, duration_s: float = 900.0) -> Dict[str, Tuple]:
    """All Table I rows for one application."""
    results: Dict[str, Tuple] = {}

    # Server band: worst and best measured uplink.
    lo = run_server_point(app_name, 0.016, duration_s)
    hi = run_server_point(app_name, 0.32, duration_s)
    results["server"] = (
        (min(lo[0], hi[0]), max(lo[0], hi[0])),
        (min(lo[1], hi[1]), max(lo[1], hi[1])),
    )

    base = run_experiment(ExperimentConfig(app=app_name, scheme="base",
                                           duration_s=duration_s)).case
    results["ms_ft_off"] = (base.throughput, base.latency_s)

    # "A phone leaves its region every five minutes" / "a phone fails
    # every five minutes": recurring faults, one per checkpoint period,
    # hitting non-source compute phones in rotation.
    results["ms_departures"] = run_ms_recurring(
        app_name, "depart", duration_s=duration_s)
    results["ms_failures"] = run_ms_recurring(
        app_name, "fail", duration_s=duration_s)
    return results


#: Non-source compute-phone indices hit by the recurring faults.
FAULT_ROTATION = [3, 4, 5, 6, 2]


def run_ms_recurring(
    app_name: str, mode: str, duration_s: float = 900.0,
    fault_period_s: float = 300.0, warmup_s: float = 150.0, seed: int = 3,
) -> Tuple[float, float]:
    """MobiStreams under one fault per checkpoint period (Table I rows
    2-3).  ``mode`` is ``"depart"`` or ``"fail"``."""
    from repro.core.system import MobiStreamsSystem, SystemConfig
    from repro.device.mobility import ScriptedDepartures

    n_events = max(1, int(duration_s // fault_period_s) - 1)
    sys_cfg = SystemConfig(
        n_regions=1, phones_per_region=8,
        idle_per_region=n_events + 2, master_seed=seed,
        checkpoint_period_s=fault_period_s,
    )
    system = MobiStreamsSystem(
        sys_cfg, app_factory(app_name)(), scheme_factories()["ms-8"])
    system.start()
    ids = [f"region0.p{i}" for i in FAULT_ROTATION[:n_events]]
    if mode == "fail":
        system.injector.periodic_crashes(fault_period_s, ids)
    else:
        system.attach_mobility(ScriptedDepartures.periodic(fault_period_s, ids))
    system.run(duration_s)
    report = system.metrics(warmup_s=warmup_s)
    rm = report.region("region0")
    return rm.throughput_tps, rm.mean_latency_s


def report(duration_s: float = 900.0) -> str:
    """The printable Table I reproduction."""
    sections: List[str] = []
    for app_name in ("bcp", "signalguru"):
        measured = run_table1(app_name, duration_s)
        paper = PAPER[app_name]
        rows = []
        (tp_lo, tp_hi), (lat_lo, lat_hi) = measured["server"]
        p_tp, p_lat = paper["server"]
        rows.append([
            "server-based DSPS",
            f"{p_tp[0]}~{p_tp[1]}", f"{tp_lo:.3f}~{tp_hi:.3f}",
            f"{p_lat[0]}~{p_lat[1]}", f"{lat_lo:.0f}~{lat_hi:.0f}",
        ])
        for key, label in (
            ("ms_ft_off", "MobiStreams (FT off)"),
            ("ms_departures", "MobiStreams (departure/5min)"),
            ("ms_failures", "MobiStreams (failure/5min)"),
        ):
            tput, lat = measured[key]
            p_tput, p_lat_v = paper[key]
            rows.append([label, f"{p_tput}", f"{tput:.3f}", f"{p_lat_v}", f"{lat:.0f}"])
        sections.append(format_table(
            ["deployment", "paper tput (t/s)", "measured tput", "paper lat (s)", "measured lat"],
            rows, title=f"Table I — {app_name}",
        ))
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover
    print(report())
