"""Generate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Run (takes a few minutes)::

    python -m repro.bench.experiments_md [--out EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.bench import ablation, fig9, fig10, table1
from repro.bench.fig8 import PAPER_LATENCY, SCHEME_ORDER, relative, run_fig8
from repro.bench.fig10 import PAPER_CKPT_NETWORK, PAPER_PRESERVATION
from repro.util.units import MB

DURATION = 1200.0
FAULT_DURATION = 900.0


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def table1_section() -> str:
    parts = ["## Table I — MobiStreams vs server-based DSPS",
             "",
             "Paper setup: 8 iPhone 3GSs per region, ad-hoc WiFi 1–5 Mbps, 3G "
             "uplink 0.016–0.32 Mbps.  Ours: the simulated substrate with the "
             "same parameters (see DESIGN.md §2)."]
    for app in ("bcp", "signalguru"):
        res = table1.run_table1(app, duration_s=FAULT_DURATION)
        paper = table1.PAPER[app]
        (tlo, thi), (llo, lhi) = res["server"]
        (ptl, pth), (pll, plh) = paper["server"]
        rows = [
            ["server-based DSPS",
             f"{ptl}–{pth}", f"{tlo:.3f}–{thi:.3f}",
             f"{pll}–{plh}", f"{llo:.0f}–{lhi:.0f}"],
        ]
        for key, label in (("ms_ft_off", "MobiStreams, FT off"),
                           ("ms_departures", "MobiStreams + departures"),
                           ("ms_failures", "MobiStreams + failures")):
            tput, lat = res[key]
            p_t, p_l = paper[key]
            rows.append([label, f"{p_t}", f"{tput:.3f}", f"{p_l}", f"{lat:.1f}"])
        parts += ["", f"### {app}", "",
                  _md_table(["row", "tput paper (t/s)", "tput measured",
                             "latency paper (s)", "latency measured"], rows)]
    parts += ["",
              "**Shape check.** The server rows are uplink-bound: orders of "
              "magnitude below MobiStreams in throughput with minute-scale "
              "latencies, matching the paper's 0.78–42.6× throughput and "
              "10–94.8% latency headline.  Recurring departures cost little "
              "(a state transfer, no rollback), exactly as in the paper.  "
              "Recurring failures cost more here than the paper's 0.48/0.54 "
              "ratio: our simulated pipelines run much closer to CPU "
              "saturation than the authors' testbed, so each catch-up replays "
              "a full period of preserved input with little headroom — the "
              "ordering (FT-off > departures > failures) still holds."]
    return "\n".join(parts)


def fig8_section() -> str:
    parts = ["## Fig. 8 — steady-state overhead of the FT schemes",
             "",
             "No faults injected; values normalized to `base` (no FT). The "
             "paper's throughput bars are OCR-ambiguous in our source, so we "
             "target the ordering `local ≳ ms-8 > dist-1 > dist-2 > dist-3 ≥ "
             "rep-2` plus the latency bars, and the headline: ms-8 vs "
             "{rep-2, dist-n} ≈ +230% throughput / −40% latency."]
    headline = {}
    for app in ("bcp", "signalguru"):
        outcomes = run_fig8(app, duration_s=DURATION)
        rel = relative(outcomes)
        rows = []
        for label in SCHEME_ORDER:
            rows.append([
                label,
                f"{rel[label]['throughput'] * 100:.0f}%",
                f"{PAPER_LATENCY[app][label]:.2f}x",
                f"{rel[label]['latency']:.2f}x",
            ])
        headline[app] = rel
        parts += ["", f"### {app}", "",
                  _md_table(["scheme", "rel tput (measured)",
                             "rel latency (paper)", "rel latency (measured)"],
                            rows)]
    # Headline averages (ms vs rep-2/dist-n).
    gains, lats = [], []
    for app, rel in headline.items():
        for other in ("rep-2", "dist-1", "dist-2", "dist-3"):
            if rel[other]["throughput"] > 0:
                gains.append(rel["ms-8"]["throughput"] / rel[other]["throughput"] - 1)
            lats.append(1 - rel["ms-8"]["latency"] / rel[other]["latency"])
    parts += ["",
              f"**Headline (measured).** ms-8 vs prior schemes: "
              f"{100 * sum(gains) / len(gains):+.0f}% throughput, "
              f"{-100 * sum(lats) / len(lats):+.0f}% latency "
              f"(paper: +230% / −40%)."]
    return "\n".join(parts)


def fig9_section() -> str:
    parts = ["## Fig. 9 — n simultaneous failures/departures per period",
             "",
             "n phones crash (or depart) at once mid-period; curves are "
             "normalized to each scheme's own n=0 point. Paper findings to "
             "reproduce: (1) ms-8's failure curve is ~flat — recovery cost "
             "does not grow with n; (2) dist-n's curve stops at n and rep-2's "
             "at 1; (3) departures cost less than failures until many "
             "simultaneous departures contend on the cellular uplink."]
    for app in ("bcp", "signalguru"):
        curves = fig9.run_fig9(app, duration_s=FAULT_DURATION, max_n=8)
        rows = []
        for name, series in curves.items():
            pts = []
            for n, rt, rl, ok in series:
                pts.append(f"{rt:.2f}" if ok else "✗")
            rows.append([name, str(len(series) - 1),
                         " ".join(pts)])
        parts += ["", f"### {app}", "",
                  _md_table(["curve", "max n", "rel tput at n=0..max"], rows)]
    return "\n".join(parts)


def fig10_section() -> str:
    parts = ["## Fig. 10 — fault-tolerance data volumes (relative to ms-8)",
             "",
             "(a) bytes retained for input/source preservation; (b) bytes "
             "sent over the network for checkpointing/replication."]
    for app in ("bcp", "signalguru"):
        rel = fig10.run_fig10(app, duration_s=DURATION)
        rows = []
        for label in SCHEME_ORDER:
            rows.append([
                label,
                f"{PAPER_PRESERVATION[app][label]:.2f}",
                f"{rel[label]['preservation']:.2f}",
                f"{PAPER_CKPT_NETWORK[app][label]:.2f}",
                f"{rel[label]['ckpt_network']:.2f}",
            ])
        parts += ["", f"### {app}", "",
                  _md_table(["scheme", "10a paper", "10a measured",
                             "10b paper", "10b measured"], rows)]
    parts += ["",
              "**Shape check.** base/rep-2 preserve nothing; the uncoordinated "
              "checkpoint schemes retain several× MobiStreams' source-only "
              "preservation; rep-2's duplicated dataflow dominates 10b; "
              "dist-n's network cost grows ~linearly in n around the ms-8 "
              "broadcast's cost."]
    return "\n".join(parts)


def ablation_section() -> str:
    parts = ["## Ablations (beyond the paper)",
             "",
             "Design choices the paper asserts, quantified on the simulated "
             "substrate (`repro.bench.ablation`, `benchmarks/bench_ablation.py`):",
             ""]
    rows = ablation.broadcast_vs_unicast()
    parts += ["### Broadcast vs unicast distribution", "",
              _md_table(["receivers", "broadcast MB", "unicast MB", "ratio"],
                        [[r["n_receivers"], f"{r['broadcast_bytes'] / MB:.2f}",
                          f"{r['unicast_bytes'] / MB:.2f}", f"{r['ratio']:.2f}x"]
                         for r in rows]), ""]
    rows = ablation.sweep_stopping_rule()
    parts += ["### UDP stopping rule", "",
              _md_table(["rule", "rounds", "total MB", "duration s"],
                        [[r["rule"], r["udp_rounds"],
                          f"{r['total_bytes'] / MB:.2f}",
                          f"{r['duration_s']:.1f}"] for r in rows]), ""]
    rows = ablation.sweep_block_size()
    parts += ["### UDP block size", "",
              _md_table(["block B", "overhead", "duration s"],
                        [[r["block_size"], f"{r['overhead']:.2f}x",
                          f"{r['duration_s']:.1f}"] for r in rows]), ""]
    rows = ablation.sweep_loss()
    parts += ["### Loss-rate sensitivity", "",
              _md_table(["loss", "rounds", "overhead"],
                        [[f"{r['loss']:.2f}", r["udp_rounds"],
                          f"{r['overhead']:.2f}x"] for r in rows]), ""]
    rows = ablation.sweep_burstiness()
    parts += ["### Loss burstiness (Gilbert-Elliott, 8% mean loss)", "",
              _md_table(["mean burst", "rounds", "overhead"],
                        [[f"{r['mean_burst']:.0f}", r["udp_rounds"],
                          f"{r['overhead']:.2f}x"] for r in rows]), ""]
    rows = ablation.sweep_checkpoint_period(duration_s=1800.0, crash_at=1200.0)
    parts += ["### Checkpoint period", "",
              _md_table(["period s", "tput t/s", "latency s", "ckpt-net MB"],
                        [[f"{r['period_s']:.0f}", f"{r['throughput']:.3f}",
                          f"{r['latency_s']:.1f}",
                          f"{r['ft_network_bytes'] / MB:.1f}"] for r in rows])]
    return "\n".join(parts)


HEADER = """# EXPERIMENTS — paper vs measured

Every table and figure of Wang & Peh, *MobiStreams* (IPDPS 2014),
regenerated on this repository's simulated substrate.  Absolute numbers
are not expected to match the authors' 32-iPhone testbed (see DESIGN.md
§2 and §4); the *shape* — who wins, rough factors, crossovers, which
schemes fail to recover — is the reproduction target.

Regenerate any section with the matching bench::

    pytest benchmarks/bench_table1.py --benchmark-only -s
    pytest benchmarks/bench_fig8.py   --benchmark-only -s
    pytest benchmarks/bench_fig9.py   --benchmark-only -s
    pytest benchmarks/bench_fig10.py  --benchmark-only -s
    pytest benchmarks/bench_ablation.py --benchmark-only -s

or everything at once with ``python -m repro.bench.run_all``.  This file
itself is generated by ``python -m repro.bench.experiments_md``.
"""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    args = parser.parse_args(argv)
    sections = [HEADER]
    for name, fn in (("Table I", table1_section), ("Fig. 8", fig8_section),
                     ("Fig. 9", fig9_section), ("Fig. 10", fig10_section),
                     ("Ablations", ablation_section)):
        t0 = time.perf_counter()
        print(f"[experiments_md] running {name}...", flush=True)
        sections.append(fn())
        print(f"[experiments_md] {name} done in {time.perf_counter() - t0:.0f}s",
              flush=True)
    with open(args.out, "w") as f:
        f.write("\n\n".join(sections) + "\n")
    print(f"[experiments_md] wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
