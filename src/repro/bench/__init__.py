"""Benchmark harness: regenerates every table and figure of Section IV.

One module per artifact:

* :mod:`repro.bench.table1` — MobiStreams vs server-based DSPS.
* :mod:`repro.bench.fig8`   — steady-state FT overhead of all schemes.
* :mod:`repro.bench.fig9`   — n simultaneous failures/departures.
* :mod:`repro.bench.fig10`  — preservation + checkpoint data volumes.

``python -m repro.bench.run_all`` prints every artifact (paper values
alongside measured ones) — the source of EXPERIMENTS.md.
"""

from repro.bench.harness import ExperimentConfig, run_experiment, scheme_factories

__all__ = ["ExperimentConfig", "run_experiment", "scheme_factories"]
