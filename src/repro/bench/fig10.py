"""Fig. 10: fault-tolerance data volumes, normalized to MobiStreams.

(a) bytes retained for input/source preservation — prior schemes retain
    every operator's outputs; MobiStreams retains only source input.
(b) bytes sent over the network for checkpointing/replication — rep-2
    duplicates the whole dataflow; dist-n unicasts n state copies;
    local sends nothing; MobiStreams broadcasts each state once (plus
    bitmap/TCP-tree overhead).
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.fig8 import SCHEME_ORDER, run_fig8
from repro.bench.harness import format_table
from repro.results import ResultSet

#: Paper values normalized to ms = 1.
PAPER_PRESERVATION = {
    "signalguru": {"base": 0.0, "rep-2": 0.0, "local": 4.96, "dist-1": 4.11,
                   "dist-2": 3.36, "dist-3": 2.41, "ms-8": 1.0},
    "bcp": {"base": 0.0, "rep-2": 0.0, "local": 8.23, "dist-1": 6.12,
            "dist-2": 3.09, "dist-3": 0.41, "ms-8": 1.0},
}
PAPER_CKPT_NETWORK = {
    "signalguru": {"base": 0.0, "rep-2": 6.97, "local": 0.0, "dist-1": 0.76,
                   "dist-2": 1.52, "dist-3": 2.28, "ms-8": 1.0},
    "bcp": {"base": 0.0, "rep-2": 8.82, "local": 0.0, "dist-1": 0.71,
            "dist-2": 1.42, "dist-3": 2.13, "ms-8": 1.0},
}


def run_fig10(app_name: str, duration_s: float = 1200.0,
              checkpoint_period_s: float = 300.0) -> Dict[str, Dict[str, float]]:
    """Relative preserved/ft-network bytes per scheme (ms-8 = 1)."""
    outcomes = run_fig8(app_name, duration_s,
                        checkpoint_period_s=checkpoint_period_s)
    rs = ResultSet.from_cases(
        o.case.replace(scheme=label) for label, o in outcomes.items()
    )
    # The paper's Fig. 10 normalizer: ms-8 = 1, with the denominator
    # floored at one byte so an all-zero baseline stays finite.
    rel = rs.relative_to("ms-8", axis="scheme",
                         metrics=("preserved_bytes", "ft_network_bytes"),
                         floor=1.0)
    out: Dict[str, Dict[str, float]] = {}
    for label, o in outcomes.items():
        out[label] = {
            "preservation": rel[label]["preserved_bytes"],
            "ckpt_network": rel[label]["ft_network_bytes"],
            "preserved_bytes": o.case.preserved_bytes,
            "ft_network_bytes": o.case.ft_network_bytes,
        }
    return out


def report(duration_s: float = 1200.0) -> str:
    """The printable Fig. 10 reproduction."""
    sections: List[str] = []
    for app_name in ("bcp", "signalguru"):
        rel = run_fig10(app_name, duration_s)
        rows = []
        for label in SCHEME_ORDER:
            rows.append([
                label,
                f"{PAPER_PRESERVATION[app_name][label]:.2f}",
                f"{rel[label]['preservation']:.2f}",
                f"{PAPER_CKPT_NETWORK[app_name][label]:.2f}",
                f"{rel[label]['ckpt_network']:.2f}",
            ])
        sections.append(format_table(
            ["scheme", "10a paper", "10a measured", "10b paper", "10b measured"],
            rows, title=f"Fig. 10 — {app_name} (relative to ms-8 = 1)",
        ))
    return "\n\n".join(sections)


if __name__ == "__main__":  # pragma: no cover
    print(report())
