"""Regenerate every table and figure: ``python -m repro.bench.run_all``.

Pass ``--quick`` for shorter simulations (smoke-check the shapes).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import ablation, fig8, fig9, fig10, table1


def main(argv=None) -> int:
    """Run all artifacts, printing paper-vs-measured tables."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs (~4x faster, noisier numbers)")
    parser.add_argument("--only",
                        choices=["table1", "fig8", "fig9", "fig10", "ablation"],
                        help="run a single artifact")
    args = parser.parse_args(argv)

    duration = 600.0 if args.quick else 1200.0
    fig9_n = 4 if args.quick else 8

    artifacts = {
        "table1": lambda: table1.report(duration_s=min(duration, 900.0)),
        "fig8": lambda: fig8.report(duration_s=duration),
        "fig9": lambda: fig9.report(duration_s=min(duration, 900.0), max_n=fig9_n),
        "fig10": lambda: fig10.report(duration_s=duration),
        "ablation": ablation.report,
    }
    selected = [args.only] if args.only else list(artifacts)
    for name in selected:
        t0 = time.perf_counter()
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        print(artifacts[name]())
        print(f"[{name} regenerated in {time.perf_counter() - t0:.1f}s wall]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
