"""Text rendering of the paper's figures (bars and curves).

The evaluation artifacts are *figures*, not just numbers; these
renderers draw them as Unicode charts so ``run_all`` and the examples
can show the measured shape next to the paper's:

* :func:`bar_chart` — horizontal bars (Fig. 8 / Fig. 10 style).
* :func:`line_chart` — multi-series curves over an integer x-axis
  (Fig. 9 style), one glyph per series, ``✗`` marking dead points.

Pure functions over plain data; no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

FULL = "█"
PARTIALS = " ▏▎▍▌▋▊▉"


def _bar(value: float, vmax: float, width: int) -> str:
    """A left-aligned bar of ``value``/``vmax`` scaled to ``width`` cells."""
    if vmax <= 0 or value <= 0:
        return ""
    cells = value / vmax * width
    whole = int(cells)
    frac = cells - whole
    bar = FULL * whole
    partial_idx = int(frac * 8)
    if partial_idx > 0:
        bar += PARTIALS[partial_idx]
    return bar


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str = "",
    width: int = 40,
    unit: str = "",
    reference: Optional[float] = None,
) -> str:
    """Horizontal bar chart.

    Parameters
    ----------
    items:
        ``(label, value)`` pairs, drawn top to bottom.
    width:
        Bar area width in character cells.
    unit:
        Suffix printed after each value (e.g. ``"x"``, ``"t/s"``).
    reference:
        Optional value marked with ``┊`` inside each bar row (e.g. the
        ``base = 1.0`` normalizer).
    """
    if not items:
        return title
    vmax = max(v for _l, v in items)
    if reference is not None:
        vmax = max(vmax, reference)
    if vmax <= 0:
        vmax = 1.0
    label_w = max(len(l) for l, _v in items)
    lines = [title] if title else []
    ref_cell = (int(reference / vmax * width) if reference is not None
                else None)
    for label, value in items:
        bar = _bar(value, vmax, width)
        row = list(bar.ljust(width))
        if ref_cell is not None and 0 <= ref_cell < width and row[ref_cell] == " ":
            row[ref_cell] = "┊"
        lines.append(f"{label.rjust(label_w)} │{''.join(row)}│ "
                     f"{value:.2f}{unit}")
    return "\n".join(lines)


#: One distinct marker per series, cycled.
MARKERS = "o*+x#@%&"


def line_chart(
    series: Dict[str, List[Tuple[int, Optional[float]]]],
    title: str = "",
    height: int = 12,
    x_label: str = "n",
    y_label: str = "",
) -> str:
    """Multi-series chart over integer x values (Fig. 9 style).

    ``series`` maps name -> list of ``(x, y)``; ``y = None`` marks a
    point where the scheme failed (drawn as ``✗`` on the axis).  Every
    series gets a marker from :data:`MARKERS`; collisions print ``▒``.
    """
    if not series:
        return title
    xs = sorted({x for pts in series.values() for x, _y in pts})
    ys = [y for pts in series.values() for _x, y in pts if y is not None]
    if not xs or not ys:
        return title
    ymax = max(ys)
    ymin = min(0.0, min(ys))
    span = max(1e-9, ymax - ymin)
    x_pos = {x: i for i, x in enumerate(xs)}
    col_w = 4
    grid_w = col_w * len(xs)

    grid = [[" "] * grid_w for _ in range(height)]
    legend = []
    for si, (name, pts) in enumerate(series.items()):
        marker = MARKERS[si % len(MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = x_pos[x] * col_w + col_w // 2
            if y is None:
                row = height - 1
                ch = "✗"
            else:
                row = height - 1 - int((y - ymin) / span * (height - 1))
                ch = marker
            cur = grid[row][col]
            grid[row][col] = ch if cur == " " else ("✗" if "✗" in (cur, ch)
                                                    else "▒")

    lines = [title] if title else []
    for ri, row in enumerate(grid):
        yv = ymax - ri * span / max(1, height - 1)
        axis = f"{yv:6.2f} ┤" if ri % 3 == 0 or ri == height - 1 else "       │"
        lines.append(axis + "".join(row))
    lines.append("       └" + "─" * grid_w)
    ticks = "        "
    for x in xs:
        ticks += str(x).center(col_w)
    lines.append(ticks + f"  ({x_label})")
    if y_label:
        lines.insert(1 if title else 0, f"  [{y_label}]")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def fig8_chart(rel: Dict[str, Dict[str, float]], app_name: str,
               order: Sequence[str]) -> str:
    """Render one app's Fig. 8 panel (throughput and latency bars)."""
    tput = [(label, rel[label]["throughput"]) for label in order]
    lat = [(label, rel[label]["latency"]) for label in order]
    return "\n\n".join([
        bar_chart(tput, title=f"Fig. 8 — {app_name}: relative throughput "
                              "(base = 1.0)", unit="x", reference=1.0),
        bar_chart(lat, title=f"Fig. 8 — {app_name}: relative latency "
                             "(base = 1.0)", unit="x", reference=1.0),
    ])


def fig9_chart(curves: Dict[str, List[Tuple[int, float, float, bool]]],
               app_name: str, metric: str = "throughput") -> str:
    """Render one app's Fig. 9 panel from ``run_fig9`` output."""
    idx = 1 if metric == "throughput" else 2
    series: Dict[str, List[Tuple[int, Optional[float]]]] = {}
    for name, pts in curves.items():
        series[name] = [(p[0], p[idx] if p[3] else None) for p in pts]
    return line_chart(
        series,
        title=f"Fig. 9 — {app_name}: relative {metric} vs simultaneous "
              "faults",
        x_label="n nodes fail/leave",
        y_label=f"relative {metric}",
    )
