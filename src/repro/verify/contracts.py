"""Per-scheme delivery contracts: what recovery is allowed to do to data.

Flux and Borealis define recovery correctness as a precise *delivery
contract* per scheme — exactly what is promised about tuples that cross
a crash/recovery epoch.  This module mechanizes those contracts so the
invariant harness (:mod:`repro.verify.harness`) can enforce each
scheme's own promise, not a one-size-fits-all property.

A scheme declares its contract with the ``delivery_contract`` class (or
instance) attribute — a name resolved through :data:`CONTRACTS`:

``"none"``
    No promise (``base``).  Only structural invariants that hold for any
    run (monotone checkpoint versions where versions exist at all) are
    checked; loss and duplication after a failure are expected.
``"duplication-free"``
    Replication (``rep-k``): a logical result is published at most once
    even when replica chains race; loss is tolerated when a whole chain
    dies.
``"bounded-loss"``
    Periodic checkpointing (``local``/``dist-n``): at most one
    checkpoint period of input may be lost per failure; no duplicated
    sink outputs; the region makes progress again after a recovery.
``"exactly-once"``
    Commit-token checkpointing (``ms-n``): no loss and no duplication
    across recovery — replay must cover the full gap between the
    restored version and the crash, the token protocol must commit
    safely, and the region must make progress again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class DeliveryContract:
    """One scheme's recovery promise, as checkable invariant flags."""

    name: str
    #: A sink result (per emit key) is published at most once.
    duplication_free: bool = False
    #: Commit-token safety: no checkpoint commits while tokens are
    #: outstanding; no restore from an abandoned or incomplete version.
    token_protocol: bool = False
    #: Catch-up replay must cover every input since the restored cut.
    replay_covers_gap: bool = False
    #: Checkpoint/recovery versions advance monotonically per region.
    monotone_versions: bool = False
    #: After a successful recovery, continued input must eventually
    #: produce sink output again (the region did not silently wedge).
    progress_after_recovery: bool = False


CONTRACTS: Dict[str, DeliveryContract] = {
    "none": DeliveryContract("none"),
    "duplication-free": DeliveryContract(
        "duplication-free", duplication_free=True),
    "bounded-loss": DeliveryContract(
        "bounded-loss", duplication_free=True, monotone_versions=True,
        progress_after_recovery=True),
    "exactly-once": DeliveryContract(
        "exactly-once", duplication_free=True, token_protocol=True,
        replay_covers_gap=True, monotone_versions=True,
        progress_after_recovery=True),
}


def contract_for(scheme: Any) -> DeliveryContract:
    """The declared contract of a scheme instance.

    Schemes without a declaration fall back to ``"none"`` — third-party
    schemes opt *in* to enforcement.  Unknown declarations raise: a
    typo'd contract name silently checking nothing would defeat the
    whole harness.
    """
    name = getattr(scheme, "delivery_contract", "none")
    try:
        return CONTRACTS[name]
    except KeyError:
        known = ", ".join(sorted(CONTRACTS))
        raise ValueError(
            f"scheme {getattr(scheme, 'name', scheme)!r} declares unknown "
            f"delivery contract {name!r}; known contracts: {known}"
        ) from None
