"""The runtime invariant harness: recovery correctness, checked live.

:class:`InvariantHarness` attaches to a running
:class:`~repro.core.system.MobiStreamsSystem` through the
:meth:`~repro.sim.monitor.Trace.add_observer` API — the same observe-only
tap the QoS monitor uses.  It draws no randomness, mutates no simulation
state, and schedules nothing, so arming it cannot change a case's
metrics row; when disarmed (the default everywhere) no harness object is
built at all and the hot paths pay nothing.

Each region is checked against its scheme's declared
:class:`~repro.verify.contracts.DeliveryContract`:

* **Delivery ledger** — a per-region count of ``source_ingest`` records
  (one per preserved input tuple, replays included) anchored at every
  ``checkpoint_requested`` cut.  At ``catchup_started`` the replayed
  tuple count must equal the ingests since the restored cut: the
  preservation store covered the full gap between the MRC and the crash
  (``replay_covers_gap``).
* **Commit-token safety** (``token_protocol``) — no
  ``checkpoint_complete`` while a node still holds unready channel
  tokens for that version; no commit of an abandoned version; no
  restore from an abandoned or never-completed version.
* **Duplication-free delivery** — no two ``sink_output`` records of one
  region share an ``(op, emit key)`` pair across crash/recovery epochs.
* **Monotone versions** — ``checkpoint_requested`` versions strictly
  increase per region, ``node_snapshot`` versions strictly increase per
  (region, node), and the restored MRC never moves backwards.
* **Progress after recovery** — a region that recovered successfully
  and keeps ingesting input must eventually deliver data to its sinks
  again (published *or* discarded as a replay/duplicate — suppression
  is still progress), after a congestion grace period (checked at
  :meth:`InvariantHarness.finish`).

Violations are collected as structured :class:`Violation` records, each
carrying a window of the most recent trace records for debugging;
:meth:`InvariantHarness.raise_if_violated` wraps them in an
:class:`InvariantViolation`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Set, Tuple

from repro.verify.contracts import DeliveryContract, contract_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import MobiStreamsSystem
    from repro.sim.monitor import Trace, TraceRecord

#: Trace records kept in the rolling debug window attached to violations.
WINDOW_SIZE = 48

#: Ingests after a recovery before silence counts as a wedged region.
#: Generous on purpose: sinks aggregate (one output per many inputs),
#: and a recovery near the end of a run legitimately sees few outputs.
PROGRESS_MIN_INGESTS = 200

#: Simulated seconds after a recovery before sink silence counts as a
#: wedged region.  Catch-up replays a full inter-checkpoint interval of
#: input through a contended WiFi cell, so the first post-recovery sink
#: result (even a discarded replay result) can legitimately take over a
#: minute to surface.
PROGRESS_GRACE_S = 120.0


class Violation:
    """One structured invariant violation."""

    __slots__ = ("invariant", "region", "time", "message", "details", "window")

    def __init__(
        self,
        invariant: str,
        region: str,
        time: float,
        message: str,
        details: Optional[Dict[str, Any]] = None,
        window: Tuple[Dict[str, Any], ...] = (),
    ) -> None:
        self.invariant = invariant
        self.region = region
        self.time = time
        self.message = message
        self.details: Dict[str, Any] = details or {}
        #: The trailing trace records (as plain dicts) leading up to the
        #: violation — the evidence a reproducer needs.
        self.window = window

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (stable keys; rides beside artifacts, never
        inside a row)."""
        return {
            "invariant": self.invariant,
            "region": self.region,
            "time": self.time,
            "message": self.message,
            "details": dict(self.details),
            "window": [dict(r) for r in self.window],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Violation {self.invariant} region={self.region} "
                f"t={self.time:.3f} {self.message!r}>")


class InvariantViolation(AssertionError):
    """Raised (on request) when a run breaks its delivery contract.

    Carries the full structured violation list; ``str()`` shows the
    first few with their invariant names and times.
    """

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = list(violations)
        head = "; ".join(
            f"[{v.invariant}] {v.region} t={v.time:.1f}s: {v.message}"
            for v in self.violations[:3]
        )
        more = len(self.violations) - 3
        if more > 0:
            head += f" (+{more} more)"
        super().__init__(head)


class _RegionState:
    """Per-region checker state (contract + counters + protocol sets)."""

    __slots__ = (
        "contract", "ingests", "cut_marker", "sink_seen", "waiting",
        "snapshotted", "abandoned", "completed", "last_requested",
        "last_node_snapshot", "last_mrc", "last_recovery_time",
        "ingests_after_recovery", "sinks_after_recovery", "stopped",
    )

    def __init__(self, contract: DeliveryContract) -> None:
        self.contract = contract
        #: Total ``source_ingest`` records seen (replays included) — the
        #: exact mirror of ``PreservationStore.record`` calls.
        self.ingests = 0
        #: checkpoint version -> ingest count at its cut.
        self.cut_marker: Dict[int, int] = {}
        #: Published sink (op, emit key) pairs.
        self.sink_seen: Set[Tuple[str, Any]] = set()
        #: (version, node) -> unready channel-token count.
        self.waiting: Dict[Tuple[int, str], int] = {}
        #: (version, node) pairs that snapshotted.
        self.snapshotted: Set[Tuple[int, str]] = set()
        self.abandoned: Set[int] = set()
        self.completed: Set[int] = set()
        self.last_requested = 0
        self.last_node_snapshot: Dict[str, int] = {}
        self.last_mrc = 0
        self.last_recovery_time: Optional[float] = None
        self.ingests_after_recovery = 0
        self.sinks_after_recovery = 0
        self.stopped = False


class InvariantHarness:
    """Observe-only recovery-invariant checker for one live system.

    Wiring order (what ``run_case(..., verify=True)`` does)::

        harness = InvariantHarness(system)
        harness.start()            # resolves contracts, taps the trace
        system.run(duration)
        harness.finish()           # end-of-run checks, detach
        harness.violations         # [] on a contract-clean run

    By default violations are *collected*, not raised — a sweep wants
    every violation of every case, not the first traceback.  Pass
    ``raise_on_violation=True`` (or call :meth:`raise_if_violated`) to
    turn the first violation into an :class:`InvariantViolation`.
    """

    def __init__(
        self,
        system: "MobiStreamsSystem",
        raise_on_violation: bool = False,
        window: int = WINDOW_SIZE,
    ) -> None:
        self.system = system
        self.trace: "Trace" = system.trace
        self.raise_on_violation = raise_on_violation
        self.violations: List[Violation] = []
        self._recent: Deque[Dict[str, Any]] = deque(maxlen=window)
        self._regions: Dict[str, _RegionState] = {}
        self._handlers = {
            "source_ingest": self._on_source_ingest,
            "sink_output": self._on_sink_output,
            "sink_discard": self._on_sink_discard,
            "checkpoint_requested": self._on_checkpoint_requested,
            "token_received": self._on_token_received,
            "node_snapshot": self._on_node_snapshot,
            "checkpoint_complete": self._on_checkpoint_complete,
            "checkpoint_abandoned": self._on_checkpoint_abandoned,
            "catchup_started": self._on_catchup_started,
            "recovery_finished": self._on_recovery_finished,
            "region_stopped": self._on_region_stopped,
        }
        self._started = False
        self._finished = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Resolve every region's contract and tap the trace."""
        if self._started:
            raise RuntimeError("harness already started")
        if not self.trace.enabled:
            raise ValueError(
                "invariant harness needs an enabled trace: a disabled "
                "trace records nothing, so an armed harness would "
                "silently verify nothing"
            )
        for region in self.system.regions:
            self._regions[region.name] = _RegionState(
                contract_for(region.scheme))
        self.trace.add_observer(self.observe, categories=self._handlers)
        self._started = True

    def finish(self) -> List[Violation]:
        """Run end-of-run checks, detach, and return the violations."""
        if self._finished:
            return self.violations
        self._finished = True
        self.trace.remove_observer(self.observe)
        self._check_progress()
        return self.violations

    def raise_if_violated(self) -> None:
        """Raise :class:`InvariantViolation` if any check failed."""
        if self.violations:
            raise InvariantViolation(self.violations)

    def contract(self, region_name: str) -> DeliveryContract:
        """The contract being enforced on one region."""
        return self._regions[region_name].contract

    # -- observation --------------------------------------------------------
    def observe(self, rec: "TraceRecord") -> None:
        """Trace-observer entry point (hot: one dict lookup when the
        category is unchecked)."""
        handler = self._handlers.get(rec.category)
        if handler is None:
            return
        self._recent.append(
            {"time": rec.time, "category": rec.category, **rec.data})
        state = self._regions.get(rec.data.get("region", ""))
        if state is None:
            return
        handler(state, rec.time, rec.data)

    def _violate(
        self,
        state: _RegionState,
        invariant: str,
        region: str,
        time: float,
        message: str,
        **details: Any,
    ) -> None:
        violation = Violation(
            invariant, region, time, message, details,
            window=tuple(dict(r) for r in self._recent),
        )
        self.violations.append(violation)
        if self.raise_on_violation:
            raise InvariantViolation([violation])

    # -- per-category checkers ---------------------------------------------
    def _on_source_ingest(self, state, time, data) -> None:
        state.ingests += 1
        if state.last_recovery_time is not None:
            state.ingests_after_recovery += 1

    def _on_sink_discard(self, state, time, data) -> None:
        # A discarded sink result (replay suppression, replica dedup) is
        # still *progress*: the pipeline delivered data to a sink.
        if state.last_recovery_time is not None:
            state.sinks_after_recovery += 1

    def _on_sink_output(self, state, time, data) -> None:
        if state.last_recovery_time is not None:
            state.sinks_after_recovery += 1
        if not state.contract.duplication_free:
            return
        key = data.get("key")
        if key is None:
            return
        pair = (data["op"], key)
        if pair in state.sink_seen:
            self._violate(
                state, "duplication-free", data["region"], time,
                f"sink {data['op']} published emit key {key!r} twice",
                op=data["op"], key=repr(key), seq=data.get("seq"),
            )
            return
        state.sink_seen.add(pair)

    def _on_checkpoint_requested(self, state, time, data) -> None:
        version = data["version"]
        # The cut: start_segment(version) and this record happen in one
        # synchronous block, so the ingest count *here* anchors the
        # replay ledger for this version exactly.
        state.cut_marker[version] = state.ingests
        if state.contract.monotone_versions and version <= state.last_requested:
            self._violate(
                state, "monotone-versions", data["region"], time,
                f"checkpoint version went backwards: requested {version} "
                f"after {state.last_requested}",
                version=version, previous=state.last_requested,
            )
        state.last_requested = max(state.last_requested, version)

    def _on_token_received(self, state, time, data) -> None:
        if not state.contract.token_protocol:
            return
        key = (data["version"], data["node"])
        if data.get("ready"):
            state.waiting.pop(key, None)
        else:
            state.waiting[key] = state.waiting.get(key, 0) + 1

    def _on_node_snapshot(self, state, time, data) -> None:
        node, version = data["node"], data["version"]
        state.snapshotted.add((version, node))
        state.waiting.pop((version, node), None)
        if state.contract.monotone_versions:
            last = state.last_node_snapshot.get(node)
            if last is not None and version <= last:
                self._violate(
                    state, "monotone-versions", data["region"], time,
                    f"node {node} snapshotted version {version} after "
                    f"already snapshotting {last}",
                    node=node, version=version, previous=last,
                )
            state.last_node_snapshot[node] = max(
                version, last if last is not None else version)

    def _on_checkpoint_complete(self, state, time, data) -> None:
        version = data["version"]
        state.completed.add(version)
        if not state.contract.token_protocol:
            return
        if version in state.abandoned:
            self._violate(
                state, "token-safety", data["region"], time,
                f"checkpoint v{version} committed after being abandoned",
                version=version,
            )
        outstanding = sorted(
            node for (v, node), n in state.waiting.items()
            if v == version and n > 0 and (v, node) not in state.snapshotted
        )
        if outstanding:
            self._violate(
                state, "token-safety", data["region"], time,
                f"checkpoint v{version} committed with channel tokens "
                f"outstanding at {outstanding}",
                version=version, nodes=outstanding,
            )

    def _on_checkpoint_abandoned(self, state, time, data) -> None:
        version = data["version"]
        state.abandoned.add(version)
        for key in [k for k in state.waiting if k[0] == version]:
            del state.waiting[key]

    def _on_catchup_started(self, state, time, data) -> None:
        mrc, replayed = data["mrc"], data["tuples"]
        region = data["region"]
        if state.contract.monotone_versions and mrc < state.last_mrc:
            self._violate(
                state, "monotone-versions", region, time,
                f"restored version went backwards: MRC {mrc} after "
                f"restoring {state.last_mrc}",
                mrc=mrc, previous=state.last_mrc,
            )
        state.last_mrc = max(state.last_mrc, mrc)
        if state.contract.token_protocol and mrc != 0:
            if mrc in state.abandoned:
                self._violate(
                    state, "token-safety", region, time,
                    f"restored from abandoned checkpoint v{mrc}",
                    mrc=mrc,
                )
            elif mrc not in state.completed:
                self._violate(
                    state, "token-safety", region, time,
                    f"restored from v{mrc} which never completed",
                    mrc=mrc,
                )
        if state.contract.replay_covers_gap:
            expected = state.ingests - state.cut_marker.get(mrc, 0)
            if replayed != expected:
                self._violate(
                    state, "replay-gap", region, time,
                    f"catch-up from v{mrc} replayed {replayed} tuple(s) "
                    f"but {expected} were ingested since that cut",
                    mrc=mrc, replayed=replayed, expected=expected,
                )

    def _on_recovery_finished(self, state, time, data) -> None:
        if data.get("outcome") != "recovered":
            return
        # Restart the progress window at every successful recovery: only
        # silence *after the last one* counts.
        state.last_recovery_time = time
        state.ingests_after_recovery = 0
        state.sinks_after_recovery = 0

    def _on_region_stopped(self, state, time, data) -> None:
        state.stopped = True

    # -- end-of-run checks --------------------------------------------------
    def _check_progress(self) -> None:
        for name, state in self._regions.items():
            if not state.contract.progress_after_recovery:
                continue
            if state.last_recovery_time is None or state.stopped:
                continue
            elapsed = self.system.sim.now - state.last_recovery_time
            if (elapsed >= PROGRESS_GRACE_S
                    and state.ingests_after_recovery >= PROGRESS_MIN_INGESTS
                    and state.sinks_after_recovery == 0):
                self._violate(
                    state, "progress-after-recovery", name,
                    self.system.sim.now,
                    f"region ingested {state.ingests_after_recovery} "
                    f"tuple(s) over {elapsed:.0f}s after its recovery at "
                    f"t={state.last_recovery_time:.1f}s without a single "
                    f"sink result (published or discarded)",
                    recovered_at=state.last_recovery_time,
                    ingests=state.ingests_after_recovery,
                    elapsed=elapsed,
                )
