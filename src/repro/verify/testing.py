"""Seeded synthetic bugs for exercising the invariant harness.

The harness is itself code that can rot; these fixtures prove it still
*catches* things.  :class:`BrokenPreservationScheme` is MobiStreams with
one deliberate defect — completed checkpoints prune the preservation
store one segment too far, so catch-up replay after a crash misses the
input between the last cut and the crash (silent tuple loss; exactly the
class of bug Section III-B's preservation rule exists to prevent).  An
armed run over any post-checkpoint crash raises a ``replay-gap``
violation; the fuzzer's shrinker then minimizes the triggering scenario.

Use via the scheme extension registry::

    with broken_replay_scheme():
        run_case(spec, "bcp", BROKEN_REPLAY, seed, verify=True)

Nothing here is imported by production code paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.checkpoint import MobiStreamsScheme
from repro.scenarios.runner import register_scheme, unregister_scheme

#: Scheme label the fixture registers under.
BROKEN_REPLAY = "broken-replay"


class BrokenPreservationScheme(MobiStreamsScheme):
    """MobiStreams with an off-by-one preservation prune (test-only)."""

    def __init__(self) -> None:
        super().__init__(label=BROKEN_REPLAY)

    def _on_checkpoint_complete(self, version: int) -> None:
        super()._on_checkpoint_complete(version)
        # The defect: also drop the segment recorded *since* this cut —
        # input the next recovery will need but can no longer replay.
        self.preservation.on_checkpoint_complete(version + 1)


@contextmanager
def broken_replay_scheme() -> Iterator[str]:
    """Register the broken scheme for the duration of a test."""
    register_scheme(BROKEN_REPLAY, BrokenPreservationScheme)
    try:
        yield BROKEN_REPLAY
    finally:
        unregister_scheme(BROKEN_REPLAY)
