"""Delta-debug shrinking of failing scenario specs.

Given a spec whose armed run violated an invariant, :func:`shrink`
greedily minimizes it while preserving the failure: drop events one at
a time to a fixpoint, then shrink each survivor's parameters (fewer
phones, count 1, quantized times, no open windows), then compress the
run itself (shorter duration, rounder checkpoint period).  The result
is a minimal reproducer — typically one or two events — that still
triggers the *same invariant* and plugs straight into
``repro scenario run <spec.json> --verify``.

Every candidate is evaluated by actually re-running the case with the
harness armed, so shrinking is exact (no heuristics about which events
"matter"); ``max_runs`` caps the cost.  Candidate evaluations are
memoized on the spec's canonical JSON — delta debugging retries
overlapping subsets, and each re-run is the expensive part.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.scenarios.spec import EventSpec, ScenarioSpec
from repro.verify.fuzz import run_spec


class ShrinkBudget(RuntimeError):
    """Internal signal: the run cap was reached mid-pass."""


def failing_invariants(spec: ScenarioSpec) -> Set[str]:
    """The invariant names an armed run of ``spec`` violates."""
    names: Set[str] = set()
    for result in run_spec(spec):
        names.update(v.invariant for v in result.violations)
    return names


def _rename(spec: ScenarioSpec, suffix: str = ".min") -> ScenarioSpec:
    name = spec.name
    if not name.endswith(suffix):
        spec = dataclasses.replace(spec, name=name + suffix)
    return spec


def _quantize_down(value: float, step: float, minimum: float) -> float:
    """Largest multiple of ``step`` that is <= value and >= minimum."""
    return max(minimum, (value // step) * step)


def _event_candidates(ev: EventSpec, spec: ScenarioSpec) -> List[EventSpec]:
    """Simpler variants of one event, most aggressive first."""
    out: List[EventSpec] = []
    if len(ev.phones) > 1:
        out.append(dataclasses.replace(ev, phones=ev.phones[:1]))
    if ev.count > 1:
        out.append(dataclasses.replace(ev, count=1))
    if ev.until is not None:
        out.append(dataclasses.replace(ev, until=None))
    rounded = _quantize_down(ev.time, 10.0, 1.0)
    if rounded != ev.time:
        out.append(dataclasses.replace(ev, time=rounded))
    if ev.interval not in (10.0, 30.0):
        out.append(dataclasses.replace(ev, interval=10.0))
    return out


def shrink(
    spec: ScenarioSpec,
    invariant: Optional[str] = None,
    max_runs: int = 200,
    on_progress: Optional[Callable[[int, ScenarioSpec], None]] = None,
) -> Tuple[ScenarioSpec, int]:
    """Minimize ``spec`` while it still violates ``invariant``.

    ``invariant`` defaults to whatever the unshrunk spec violates (any
    one of them must survive each shrink step).  Returns the minimized
    spec (renamed ``<name>.min``) and the number of verification runs
    spent.  Raises ``ValueError`` if the input spec does not fail at
    all — shrinking a passing spec would "minimize" it to noise.
    """
    runs = 0
    cache: Dict[str, bool] = {}
    baseline = failing_invariants(spec)
    runs += 1
    if not baseline:
        raise ValueError(
            f"spec {spec.name!r} does not violate any invariant; "
            "nothing to shrink"
        )
    targets = baseline if invariant is None else {invariant}
    if invariant is not None and invariant not in baseline:
        raise ValueError(
            f"spec {spec.name!r} violates {sorted(baseline)}, "
            f"not {invariant!r}"
        )

    def still_fails(candidate: ScenarioSpec) -> bool:
        nonlocal runs
        key = candidate.to_json()
        hit = cache.get(key)
        if hit is not None:
            return hit
        if runs >= max_runs:
            raise ShrinkBudget()
        runs += 1
        ok = bool(targets & failing_invariants(candidate))
        cache[key] = ok
        if ok and on_progress is not None:
            on_progress(runs, candidate)
        return ok

    current = spec
    try:
        # Pass 1: drop events to a fixpoint (classic ddmin, step 1).
        changed = True
        while changed:
            changed = False
            for i in range(len(current.events)):
                if len(current.events) == 1:
                    break
                events = current.events[:i] + current.events[i + 1:]
                candidate = dataclasses.replace(current, events=events)
                if still_fails(candidate):
                    current = candidate
                    changed = True
                    break

        # Pass 2: shrink each surviving event's parameters.
        for i in range(len(current.events)):
            for variant in _event_candidates(current.events[i], current):
                events = (current.events[:i] + (variant,)
                          + current.events[i + 1:])
                candidate = dataclasses.replace(current, events=events)
                if still_fails(candidate):
                    current = candidate

        # Pass 3: compress the run window around the surviving events.
        last_event = max((ev.time for ev in current.events), default=0.0)
        for fraction in (0.5, 0.7):
            duration = _quantize_down(
                current.duration_s * fraction, 10.0, last_event + 30.0)
            if duration >= current.duration_s:
                continue
            candidate = dataclasses.replace(
                current, duration_s=duration,
                warmup_s=min(current.warmup_s, duration * 0.1))
            if still_fails(candidate):
                current = candidate
                break
    except ShrinkBudget:
        pass
    return _rename(current), runs
