"""Runtime verification: recovery invariants + the scenario fuzzer.

This package turns the paper's *correctness* claims — commit-token
checkpointing recovers from burst failures without losing or duplicating
tuples — into machine-checked invariants, and hunts for violations with
a property-based scenario fuzzer.

Armed vs disarmed
-----------------
Disarmed (the default everywhere): no harness object is built, no trace
observer is registered, artifacts are byte-identical to pre-verify code.
Armed (``run_case(..., verify=True)``, ``scenario run/sweep --verify``,
``repro fuzz``): an :class:`InvariantHarness` taps the shared trace
through the observer API — observe-only, zero RNG — and collects
structured :class:`Violation` records.  Violations ride *beside* the
artifact (CLI stderr / the returned envelope), never inside a row, so
even an armed sweep's artifact bytes are unchanged.

Delivery contract per scheme
----------------------------
===========  ==================  =====================================================
scheme       contract            checked invariants
===========  ==================  =====================================================
``base``     ``none``            (none — loss and duplication are expected)
``rep-k``    ``duplication-free``  no sink result published twice
``local``    ``bounded-loss``    duplication-free + monotone versions + progress
``dist-n``   ``bounded-loss``    duplication-free + monotone versions + progress
``ms-n``     ``exactly-once``    all of the above + token safety + replay covers
                                 the full gap between the restored MRC and the crash
===========  ==================  =====================================================

Fuzz → shrink workflow
----------------------
``repro fuzz gen --seed S`` writes the seed's generated specs (byte-
deterministic); ``repro fuzz run --seed S`` executes them with
invariants armed and — on a violation — delta-debug shrinks the failing
spec (:func:`repro.verify.shrink.shrink`) into ``<name>.min.json``, a
minimal regression scenario runnable via
``repro scenario run <file> --verify``; ``repro fuzz shrink FILE``
re-shrinks any saved failing spec.
"""

from repro.verify.contracts import CONTRACTS, DeliveryContract, contract_for
from repro.verify.fuzz import (
    FuzzResult,
    fuzz,
    generate_spec,
    generate_specs,
    load_spec,
    run_spec,
    write_specs,
)
from repro.verify.harness import InvariantHarness, InvariantViolation, Violation
from repro.verify.shrink import shrink

__all__ = [
    "CONTRACTS",
    "DeliveryContract",
    "FuzzResult",
    "InvariantHarness",
    "InvariantViolation",
    "Violation",
    "contract_for",
    "fuzz",
    "generate_spec",
    "generate_specs",
    "load_spec",
    "run_spec",
    "shrink",
    "write_specs",
]
