"""Static analysis: project-aware lint rules with a baseline gate.

The byte-identity contract — every artifact identical across serial/
parallel/distributed/resumed execution — has been broken twice by the
same bug classes (str-hash-order voting in PR 2, a wall-clock epoch
anchor in PR 8).  This package checks those classes *statically*:
``python -m repro lint src/`` walks the ASTs with ~10 project-specific
rules and fails on any finding not in the committed baseline
(``lint-baseline.json``, kept empty).

Rule catalog
------------
====================  ===============  ==============================================
rule                  family           rationale
====================  ===============  ==============================================
``set-iteration``     determinism      set iteration order follows the hash seed; in
                                       serialization/voting paths it flips artifact
                                       bytes between runs — wrap in ``sorted()``
``unseeded-rng``      determinism      global/unseeded ``random``/``np.random`` calls
                                       break seed→artifact purity; only ``sim/rng.py``
                                       owns module-level RNG state
``wall-clock``        determinism      ``time.time()``/``datetime.now()`` leak the
                                       host clock; intervals want ``perf_counter()``
``id-order``          determinism      sorting/comparing by ``id()`` orders by memory
                                       address, different every process
``deprecated-members``  api-contract   ``WifiCell.members`` warns at runtime and
                                       copies; ``member_ids()`` is the stable surface
``raw-loss-poke``     api-contract     writing ``_loss``/``_uniform_p``/
                                       ``_uniform_loss_p`` skips ``set_loss()``
                                       validation and loss-model bookkeeping
``missing-slots``     api-contract     a subclass of a slotted class (or any hot-path
                                       class) without ``__slots__`` silently regains
                                       a per-instance ``__dict__``
``default-key-emit``  api-contract     ``to_dict()`` must omit None-default optional
                                       fields or old specs change digest
``observer-purity``   observer-purity  Trace observer callbacks (QoSMonitor,
                                       InvariantHarness) must not call scheduler/RNG
                                       APIs — observers observe
``lock-discipline``   lock-discipline  in ``fabric/``, attributes written under
                                       ``self._lock`` must only be touched while
                                       holding it — a static race detector
====================  ===============  ==============================================

Spec checks (``repro lint path/to/spec.json``): ``spec-invalid``,
``spec-late-event`` (event at/after ``duration_s`` never fires, reusing
``late_events()``), ``spec-unknown-app``, ``spec-unknown-scheme``,
``spec-noncanonical-key`` (default-valued keys that change digests).

Workflow
--------
Findings are suppressed per line with ``# repro-lint: disable=RULE``
(comma-separated IDs, or ``all``).  The committed baseline makes the CI
gate "no *new* findings": ``--write-baseline`` records current debt,
``--no-baseline`` shows everything, ``--rule R`` narrows a run.  Rules
register through :func:`repro.analysis.core.register_rule`, the same
plugin idiom as the app/scheme registries.
"""

from repro.analysis import rules  # noqa: F401  (populates the registry)
from repro.analysis.baseline import (
    default_baseline_path,
    diff_against,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import (
    Finding,
    Rule,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
    rule_names,
)
from repro.analysis.speclint import SPEC_RULES, lint_spec_dict, lint_spec_file

__all__ = [
    "Finding",
    "Rule",
    "SPEC_RULES",
    "all_rules",
    "default_baseline_path",
    "diff_against",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_spec_dict",
    "lint_spec_file",
    "load_baseline",
    "register_rule",
    "rule_names",
    "write_baseline",
]
