"""Baseline bookkeeping: the gate is "no *new* findings".

The committed ``lint-baseline.json`` at the repo root holds the
fingerprints of known findings (ideally none).  A lint run fails only
on findings whose fingerprint is not in the baseline — so adopting the
linter never blocks on legacy debt, and paying debt down just shrinks
the file.  Fingerprints are content-based (rule, module path, stripped
source line) and counted as a multiset: two identical offending lines
in one file need two baseline entries.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.core import Finding

BASELINE_NAME = "lint-baseline.json"
_FORMAT_VERSION = 1


def default_baseline_path(start: Optional[str] = None) -> Optional[str]:
    """The nearest committed baseline: walk up from ``start`` (default
    cwd) looking for ``lint-baseline.json``; None when there isn't one."""
    here = os.path.abspath(start or os.getcwd())
    while True:
        candidate = os.path.join(here, BASELINE_NAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(here)
        if parent == here:
            return None
        here = parent


def load_baseline(path: str) -> Counter:
    """The baseline's fingerprint multiset (bad files raise ValueError
    with the path, so the CLI error is actionable)."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from None
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"baseline {path} is not a lint baseline "
                         "(missing 'findings')")
    counts: Counter = Counter()
    for entry in data["findings"]:
        counts[str(entry["fingerprint"])] += int(entry.get("count", 1))
    return counts


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    """Persist the current findings as the new baseline (sorted, one
    entry per distinct fingerprint, stable bytes)."""
    counts: Counter = Counter(f.fingerprint for f in findings)
    payload = {
        "version": _FORMAT_VERSION,
        "findings": [
            {"fingerprint": fp, "count": n}
            for fp, n in sorted(counts.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def diff_against(findings: List[Finding],
                 baseline: Counter) -> Tuple[List[Finding], Dict[str, int]]:
    """Split findings into (new, matched-counts).

    Multiset semantics: each baseline entry absorbs at most ``count``
    findings with that fingerprint; the rest are new.  Returns the new
    findings (original order) and how many each fingerprint absorbed.
    """
    budget = Counter(baseline)
    matched: Dict[str, int] = {}
    new: List[Finding] = []
    for f in findings:
        if budget[f.fingerprint] > 0:
            budget[f.fingerprint] -= 1
            matched[f.fingerprint] = matched.get(f.fingerprint, 0) + 1
        else:
            new.append(f)
    return new, matched
