"""Observer-purity rule: Trace observers observe, nothing else.

``Trace.add_observer`` callbacks run synchronously inside the
simulator's hot loop.  The byte-identity contract (telemetry on/off
must not change artifacts) holds only if those callbacks never touch
the scheduler, the RNG registry, or anything else that perturbs the
event stream.  This rule walks the *callback closure* — the registered
method, every ``self.helper()`` it reaches, and every handler a
dispatch-table attribute points at — and flags scheduler/RNG calls
inside it.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.core import (
    FileContext,
    ImportMap,
    Rule,
    class_methods,
    is_self_attr,
    register_rule,
)
from repro.analysis.project import SCHEDULER_API


def _self_attr_values(node: ast.AST) -> Set[str]:
    """Every ``self.X`` attr name referenced anywhere under ``node``."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        attr = is_self_attr(sub)
        if attr is not None:
            out.add(attr)
    return out


@register_rule
class ObserverPurityRule(Rule):
    """Scheduler/RNG calls reachable from a Trace-observer callback."""

    name = "observer-purity"
    family = "observer-purity"
    description = ("Trace observer callback calls scheduler/RNG APIs; "
                   "observers must be observe-only")

    def check(self, ctx: FileContext) -> List:
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node, imports))
        return findings

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     imports: ImportMap) -> List:
        methods = class_methods(cls)
        if not methods:
            return []
        handler_attrs = self._handler_table_attrs(cls, methods)
        entries = self._registered_entries(cls, methods, handler_attrs)
        if not entries:
            return []
        closure = self._closure(entries, methods, handler_attrs)
        findings = []
        for name in sorted(closure):
            findings.extend(
                self._check_method(ctx, cls, methods[name], imports))
        return findings

    # -- closure construction --------------------------------------------

    @staticmethod
    def _handler_table_attrs(cls: ast.ClassDef,
                             methods: Dict[str, ast.FunctionDef],
                             ) -> Dict[str, Set[str]]:
        """``self.X = {...: self.m}`` dispatch tables: attr -> methods."""
        tables: Dict[str, Set[str]] = {}
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, (ast.Dict, ast.List, ast.Tuple)):
                continue
            referenced = {m for m in _self_attr_values(node.value)
                          if m in methods}
            if not referenced:
                continue
            for target in node.targets:
                attr = is_self_attr(target)
                if attr is not None:
                    tables.setdefault(attr, set()).update(referenced)
        return tables

    @staticmethod
    def _registered_entries(cls: ast.ClassDef,
                            methods: Dict[str, ast.FunctionDef],
                            handler_attrs: Dict[str, Set[str]]) -> Set[str]:
        """Methods handed to ``*.add_observer(...)`` (directly or via a
        dispatch-table attribute passed as an argument)."""
        entries: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "add_observer"):
                continue
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                attr = is_self_attr(value)
                if attr is None:
                    continue
                if attr in methods:
                    entries.add(attr)
                entries.update(handler_attrs.get(attr, ()))
        return entries

    @staticmethod
    def _closure(entries: Set[str], methods: Dict[str, ast.FunctionDef],
                 handler_attrs: Dict[str, Set[str]]) -> Set[str]:
        """Transitive ``self.m()`` / dispatch-table reachability."""
        closure: Set[str] = set()
        work = sorted(entries)
        while work:
            name = work.pop()
            if name in closure or name not in methods:
                continue
            closure.add(name)
            for node in ast.walk(methods[name]):
                called = None
                if isinstance(node, ast.Call):
                    called = is_self_attr(node.func)
                if called and called in methods:
                    work.append(called)
                # A referenced dispatch table pulls in its handlers.
                attr = is_self_attr(node)
                if attr and attr in handler_attrs:
                    work.extend(handler_attrs[attr])
        return closure

    # -- purity check ----------------------------------------------------

    def _check_method(self, ctx: FileContext, cls: ast.ClassDef,
                      method: ast.FunctionDef, imports: ImportMap) -> List:
        findings = []
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                receiver_is_self = (isinstance(func.value, ast.Name)
                                    and func.value.id == "self")
                if func.attr in SCHEDULER_API and not receiver_is_self:
                    findings.append(ctx.finding(
                        self.name, node,
                        f"observer callback {cls.name}.{method.name}() "
                        f"calls scheduler API .{func.attr}(); Trace "
                        "observers must be observe-only"))
                    continue
                if func.attr == "stream" and not receiver_is_self:
                    findings.append(ctx.finding(
                        self.name, node,
                        f"observer callback {cls.name}.{method.name}() "
                        "draws from an RNG stream; Trace observers must "
                        "be observe-only"))
                    continue
            resolved = imports.resolve_call(node) or ""
            parts = resolved.split(".")
            if parts[0] == "random" or parts[:2] == ["numpy", "random"]:
                findings.append(ctx.finding(
                    self.name, node,
                    f"observer callback {cls.name}.{method.name}() "
                    "calls the RNG; Trace observers must be observe-only"))
        return findings
