"""Lock-discipline rule: a lightweight static race detector for the
fabric control plane.

The coordinator/ledger/chaos classes share state between the protocol
thread, the accept loop, and per-connection handlers.  The discipline
is simple: an attribute that is ever *written* under ``self._lock``
belongs to the lock, and every other access to it must also hold the
lock.  This rule infers the guarded-attribute set per class and flags
out-of-lock accesses — the static shadow of what a race detector would
catch at runtime.

Inference details:

* Lock attributes are ``self.X = threading.Lock()/RLock()/Condition()``
  assignments; a ``Condition(self._lock)`` wraps the same mutex, so
  holding either counts.
* ``__init__``-family methods (``__init__``, ``__post_init__``) and
  repr/debug methods are exempt — construction happens before the
  object is shared.
* A method whose every call site inside the class sits under the lock
  is a *lock-context method* (a private helper like ``_spawn_one``
  that documents "caller holds the lock"); its bodies are treated as
  locked.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.core import (
    FileContext,
    ImportMap,
    Rule,
    class_methods,
    is_self_attr,
    register_rule,
)
from repro.analysis.project import LOCK_PATHS, in_paths

_LOCK_FACTORIES = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
})

_EXEMPT_METHODS = frozenset({
    "__init__", "__post_init__", "__repr__", "__str__", "__del__",
})


class _MethodAccesses(ast.NodeVisitor):
    """Collects, for one method, every ``self.X`` access and every
    ``self.m()`` call site, each tagged with whether a with-lock block
    encloses it."""

    def __init__(self, lock_attrs: Set[str]) -> None:
        self.lock_attrs = lock_attrs
        self.depth = 0
        #: (attr, node, is_store, locked)
        self.accesses: List[Tuple[str, ast.AST, bool, bool]] = []
        #: method name -> [locked?] per call site
        self.calls: Dict[str, List[bool]] = {}

    def _is_lock_expr(self, node: ast.AST) -> bool:
        attr = is_self_attr(node)
        return attr is not None and attr in self.lock_attrs

    def visit_With(self, node: ast.With) -> None:
        holds = any(self._is_lock_expr(item.context_expr)
                    for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if holds:
            self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if holds:
            self.depth -= 1

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        called = is_self_attr(node.func)
        if called is not None:
            self.calls.setdefault(called, []).append(self.depth > 0)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = is_self_attr(node)
        if attr is not None and attr not in self.lock_attrs:
            self.accesses.append(
                (attr, node, isinstance(node.ctx, ast.Store), self.depth > 0))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs (thread targets, closures) run later, possibly
        # without the lock: treat their bodies as unlocked.
        saved = self.depth
        self.depth = 0
        self.generic_visit(node)
        self.depth = saved

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]


@register_rule
class LockDisciplineRule(Rule):
    """Guarded attributes accessed outside ``with self._lock:``."""

    name = "lock-discipline"
    family = "lock-discipline"
    description = ("attribute written under self._lock accessed outside "
                   "the lock in another method")

    def check(self, ctx: FileContext) -> List:
        if not in_paths(ctx.relpath, LOCK_PATHS):
            return []
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node, imports))
        return findings

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     imports: ImportMap) -> List:
        lock_attrs = self._lock_attrs(cls, imports)
        if not lock_attrs:
            return []
        methods = class_methods(cls)
        scans = {name: self._scan(method, lock_attrs)
                 for name, method in methods.items()}

        # Guarded = written under the lock in any method.
        guarded: Set[str] = set()
        for scan in scans.values():
            for attr, _node, is_store, locked in scan.accesses:
                if is_store and locked:
                    guarded.add(attr)
        if not guarded:
            return []

        # Lock-context methods: every syntactic self.m() call site in
        # the class is under the lock (and there is at least one).
        call_sites: Dict[str, List[bool]] = {}
        for scan in scans.values():
            for name, sites in scan.calls.items():
                call_sites.setdefault(name, []).extend(sites)
        lock_context = {name for name, sites in call_sites.items()
                        if name in methods and sites and all(sites)}

        findings = []
        for name, scan in sorted(scans.items()):
            if name in _EXEMPT_METHODS or name in lock_context:
                continue
            for attr, node, is_store, locked in scan.accesses:
                if attr in guarded and not locked:
                    verb = "written" if is_store else "read"
                    findings.append(ctx.finding(
                        self.name, node,
                        f"{cls.name}.{attr} is lock-guarded but {verb} "
                        f"outside the lock in {name}(); hold self lock "
                        "or capture the value under it"))
        return findings

    @staticmethod
    def _scan(method: ast.FunctionDef, lock_attrs: Set[str]) -> _MethodAccesses:
        scan = _MethodAccesses(lock_attrs)
        for stmt in method.body:
            scan.visit(stmt)
        return scan

    @staticmethod
    def _lock_attrs(cls: ast.ClassDef, imports: ImportMap) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            resolved = imports.resolve_call(node.value) or ""
            if resolved not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                attr = is_self_attr(target)
                if attr is not None:
                    locks.add(attr)
        return locks
