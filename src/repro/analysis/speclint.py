"""``lint-spec``: static checks for ScenarioSpec JSON files.

A spec file can be wrong in ways that never raise: an event scheduled
past ``duration_s`` silently never fires, an unknown app or scheme
label only explodes when the sweep starts, and a default-valued key
(``"telemetry": null``) changes the file's digest without changing the
run.  These checks catch all of that without executing anything, by
round-tripping the file through :class:`ScenarioSpec` and reusing the
existing ``late_events()`` path.

Spec findings use the same :class:`Finding` shape as Python findings;
since JSON has no useful line numbers after parsing, the ``code`` field
(fingerprint material) carries a descriptor like ``events[3] kind=fail
t=1200.0`` instead of a source line.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.core import Finding

SPEC_RULES = (
    "spec-invalid",
    "spec-late-event",
    "spec-unknown-app",
    "spec-unknown-scheme",
    "spec-noncanonical-key",
)


def _finding(rule: str, path: str, message: str, code: str) -> Finding:
    return Finding(rule=rule, path=path, line=1, col=0,
                   message=message, code=code)


def lint_spec_file(path: str) -> List[Finding]:
    """All spec findings for one JSON file (never raises)."""
    try:
        with open(path, encoding="utf-8") as fh:
            raw = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [_finding("spec-invalid", path,
                         f"cannot parse spec file: {exc}", "parse")]
    if not isinstance(raw, dict):
        return [_finding("spec-invalid", path,
                         "spec file is not a JSON object", "parse")]
    return lint_spec_dict(raw, path)


def lint_spec_dict(raw: dict, path: str) -> List[Finding]:
    # Imported lazily: the Python-lint path must not drag the whole
    # scenario engine (numpy and friends) into every run.
    from repro.apps.registry import get_app
    from repro.scenarios.runner import scheme_factories
    from repro.scenarios.spec import ScenarioSpec
    from repro.util.simlog import get_logger

    findings: List[Finding] = []
    # from_dict logs the late-events warning at load time; the
    # spec-late-event finding below is its machine-readable version,
    # so mute the logger while round-tripping.
    log = get_logger()
    muted, log.disabled = log.disabled, True
    try:
        spec = ScenarioSpec.from_dict(raw)
    except Exception as exc:
        return [_finding("spec-invalid", path,
                         f"spec does not load: {exc}", "load")]
    finally:
        log.disabled = muted

    for event in spec.late_events():
        code = f"event kind={event.kind} t={event.time}"
        findings.append(_finding(
            "spec-late-event", path,
            f"event {event.kind!r} at t={event.time} is at/after "
            f"duration_s={spec.duration_s} and will never fire", code))

    for app in spec.matrix.apps:
        try:
            get_app(app.name)
        except Exception as exc:
            findings.append(_finding(
                "spec-unknown-app", path,
                f"matrix app {app.key!r}: {exc}", f"app={app.key}"))

    known_schemes = set(scheme_factories(spec.checkpoint_period_s))
    for scheme in spec.matrix.schemes:
        if scheme not in known_schemes:
            findings.append(_finding(
                "spec-unknown-scheme", path,
                f"matrix scheme {scheme!r} is not registered; known: "
                f"{', '.join(sorted(known_schemes))}",
                f"scheme={scheme}"))

    canonical = spec.to_dict()
    for key in sorted(set(raw) - set(canonical)):
        findings.append(_finding(
            "spec-noncanonical-key", path,
            f"key {key!r} is absent from the canonical form (default-"
            "valued or unknown); it changes the file digest without "
            "changing the run — drop it", f"key={key}"))

    return sorted(findings, key=Finding.sort_key)
