"""Project knowledge the rules key on.

Everything path- or name-shaped that makes the linter *this repo's*
linter lives here: which modules are serialization paths, where the
seeded-RNG discipline is enforced, which classes are slotted hot-path
primitives, what the scheduler API surface looks like.  Rules import
from this module instead of hard-coding strings so the map stays in one
place as the tree grows.
"""

from __future__ import annotations

from typing import Iterable

#: Module-path prefixes whose output feeds digests, goldens, or votes —
#: any unordered iteration here can flip bytes between runs (the PR 2
#: SignalGuru voting bug lived in exactly such a path).
SERIALIZATION_PATHS = (
    "repro/apps/",
    "repro/checkpoint/",
    "repro/results/",
    "repro/scenarios/",
    "repro/verify/",
)

#: The one module allowed to touch module-level RNG state: it *owns*
#: seeding (`RngRegistry.stream()` derives per-purpose streams).
RNG_EXEMPT_FILES = ("repro/sim/rng.py",)

#: Modules on the per-tuple hot path where an accidental ``__dict__``
#: costs ~56 bytes per instance times millions of events.
HOT_PATH_MODULES = (
    "repro/sim/events.py",
    "repro/core/tuples.py",
)

#: Slotted base classes defined across the tree: a subclass that fails
#: to declare ``__slots__`` (even ``()``) silently regains ``__dict__``.
SLOTTED_BASES = frozenset({
    "Event",
    "Timeout",
    "Callback",
    "Condition",
    "Process",
    "Request",
    "StreamTuple",
    "Token",
    "TraceRecord",
})

#: The simulator's scheduling/mutation surface: calling any of these
#: from a Trace-observer callback breaks the observes-only contract
#: (observers must not perturb the event stream they watch).
SCHEDULER_API = frozenset({
    "call_at",
    "call_every",
    "call_in",
    "fail",
    "interrupt",
    "process",
    "schedule",
    "succeed",
    "timeout",
    "trigger",
})

#: Where the lock-discipline rule applies: the threaded control plane.
LOCK_PATHS = ("repro/fabric/",)

#: The module that owns WifiCell internals; everyone else goes through
#: ``set_loss()`` / ``member_ids()``.
WIFI_MODULE = "repro/net/wifi.py"

#: WifiCell loss-model internals (poking these skips validation and the
#: uniform/per-link bookkeeping that keeps loss draws reproducible).
LOSS_INTERNALS = frozenset({"_loss", "_uniform_p", "_uniform_loss_p"})


def in_paths(relpath: str, prefixes: Iterable[str]) -> bool:
    """True when ``relpath`` (module path) falls under any prefix."""
    return any(relpath.startswith(p) for p in prefixes)
