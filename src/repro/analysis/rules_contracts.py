"""API-contract rules: keep callers on the supported surfaces.

These rules encode deprecations and conventions the library already
states in docstrings and DeprecationWarnings — the linter makes them
diff-time errors instead of runtime noise.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.core import (
    FileContext,
    Finding,
    ImportMap,
    Rule,
    class_methods,
    is_dataclass,
    register_rule,
)
from repro.analysis.project import (
    HOT_PATH_MODULES,
    LOSS_INTERNALS,
    SLOTTED_BASES,
    WIFI_MODULE,
    in_paths,
)


@register_rule
class DeprecatedMembersRule(Rule):
    """``WifiCell.members`` is deprecated in favor of ``member_ids()``.

    The property emits a DeprecationWarning at runtime and materializes
    a list on every access; ``member_ids()`` returns the stable sorted
    tuple the broadcast path actually uses.
    """

    name = "deprecated-members"
    family = "api-contract"
    description = "WifiCell.members is deprecated; use member_ids()"

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.relpath == WIFI_MODULE:
            return []
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "members":
                findings.append(ctx.finding(
                    self.name, node,
                    ".members is deprecated (DeprecationWarning at "
                    "runtime); use member_ids()"))
        return findings


@register_rule
class RawLossPokeRule(Rule):
    """Poking WifiCell loss internals instead of calling ``set_loss()``.

    ``_loss`` / ``_uniform_p`` / ``_uniform_loss_p`` are the loss
    model's private state; writing them directly skips validation and
    the uniform/per-link bookkeeping that keeps loss draws reproducible
    across backends.
    """

    name = "raw-loss-poke"
    family = "api-contract"
    description = "WifiCell loss internals poked directly; use set_loss()"

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.relpath == WIFI_MODULE:
            return []
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in LOSS_INTERNALS:
                findings.append(ctx.finding(
                    self.name, node,
                    f".{node.attr} is a WifiCell loss-model internal; "
                    "use set_loss()"))
        return findings


@register_rule
class MissingSlotsRule(Rule):
    """Classes that should declare ``__slots__`` but don't.

    Two triggers: (a) anywhere — subclassing a known-slotted base
    (``Event``, ``Condition``, ``StreamTuple``, ...) without declaring
    ``__slots__`` silently regains ``__dict__`` for every instance;
    (b) in hot-path modules — any class that assigns instance
    attributes in ``__init__`` must be slotted, because these types are
    allocated millions of times per run.  Dataclasses and Exception
    subclasses are exempt from (b).
    """

    name = "missing-slots"
    family = "api-contract"
    description = "hot-path class or slotted-base subclass lacks __slots__"

    def check(self, ctx: FileContext) -> List[Finding]:
        findings = []
        slotted_here = self._slotted_classes(ctx.tree)
        hot_path = in_paths(ctx.relpath, HOT_PATH_MODULES)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._has_slots(node):
                continue
            base = self._slotted_base(node, slotted_here)
            if base is not None and not is_dataclass(node):
                findings.append(ctx.finding(
                    self.name, node,
                    f"class {node.name} subclasses slotted {base} without "
                    "declaring __slots__ (even __slots__ = () works); "
                    "instances regain __dict__"))
            elif (hot_path and not is_dataclass(node)
                    and not self._is_exceptionish(node)
                    and self._init_assigns_attrs(node)):
                findings.append(ctx.finding(
                    self.name, node,
                    f"class {node.name} lives on the hot path and "
                    "assigns instance attributes; declare __slots__"))
        return findings

    @staticmethod
    def _has_slots(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False

    @classmethod
    def _slotted_classes(cls, tree: ast.Module) -> Set[str]:
        return {node.name for node in ast.walk(tree)
                if isinstance(node, ast.ClassDef) and cls._has_slots(node)}

    @staticmethod
    def _slotted_base(cls_node: ast.ClassDef, slotted_here: Set[str]) -> Optional[str]:
        for base in cls_node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None)
            if name and (name in SLOTTED_BASES or name in slotted_here):
                return name
        return None

    @staticmethod
    def _is_exceptionish(cls_node: ast.ClassDef) -> bool:
        for base in cls_node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else "")
            if name.endswith(("Error", "Exception", "Warning")):
                return True
        return False

    @staticmethod
    def _init_assigns_attrs(cls_node: ast.ClassDef) -> bool:
        init = class_methods(cls_node).get("__init__")
        if init is None:
            return False
        for node in ast.walk(init):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Store)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                return True
        return False


@register_rule
class DefaultKeyEmitRule(Rule):
    """``to_dict()`` that emits keys for fields still at their default.

    The serialization convention (see ``ScenarioSpec.to_dict``) is to
    *omit* optional fields at their default so that adding a field
    never changes the digest of an old spec.  A ``to_dict`` built on
    ``dataclasses.asdict`` must delete (or conditionally emit) every
    None-default field; one that never mentions such a field ships the
    default into the payload.
    """

    name = "default-key-emit"
    family = "api-contract"
    description = ("to_dict() emits a default-valued optional key; omit "
                   "it to keep digests stable")

    def check(self, ctx: FileContext) -> List[Finding]:
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef) or not is_dataclass(node):
                continue
            to_dict = class_methods(node).get("to_dict")
            if to_dict is None:
                continue
            optional = self._none_default_fields(node)
            if not optional:
                continue
            if not self._calls_asdict(to_dict, imports):
                continue
            mentioned = self._mentioned_fields(to_dict)
            for field_name in sorted(optional):
                if field_name not in mentioned:
                    findings.append(ctx.finding(
                        self.name, to_dict,
                        f"{node.name}.to_dict() never filters optional "
                        f"field {field_name!r}; asdict() will emit it "
                        "even at its None default, perturbing digests"))
        return findings

    @staticmethod
    def _none_default_fields(cls_node: ast.ClassDef) -> Set[str]:
        fields: Set[str] = set()
        for stmt in cls_node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None):
                fields.add(stmt.target.id)
        return fields

    @staticmethod
    def _calls_asdict(func: ast.FunctionDef, imports: ImportMap) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                resolved = imports.resolve_call(node) or ""
                if resolved.split(".")[-1] == "asdict":
                    return True
        return False

    @staticmethod
    def _mentioned_fields(func: ast.FunctionDef) -> Set[str]:
        """Field names the body references as a key string or ``self.F``."""
        mentioned: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                mentioned.add(node.value)
            elif (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                mentioned.add(node.attr)
        return mentioned
