"""The ``repro lint`` command.

Exit codes: 0 — clean against the baseline; 1 — new findings (or
``parse-error``/``spec-invalid``); 2 — usage errors (unknown rule, bad
baseline file).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Tuple

from repro.analysis import rules  # noqa: F401  (registers the catalog)
from repro.analysis.baseline import (
    default_baseline_path,
    diff_against,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import Finding, all_rules, lint_paths
from repro.analysis.speclint import SPEC_RULES, lint_spec_file


def configure_parser(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files/directories to lint; .json files are checked as "
             "ScenarioSpec files (default: src)")
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE",
        help="run only this rule (repeatable; see --list-rules)")
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="report format (default: table)")
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: nearest lint-baseline.json)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; every finding fails the run")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the rule catalog and exit")


def _split_paths(paths: List[str]) -> Tuple[List[str], List[str]]:
    """(python paths, spec-json paths)."""
    py, specs = [], []
    for path in paths:
        (specs if path.endswith(".json") else py).append(path)
    return py, specs


def _print_table(findings: List[Finding], stream) -> None:
    rows = [(f"{f.path}:{f.line}:{f.col}", f.rule, f.message)
            for f in findings]
    widths = [max(len(row[i]) for row in rows) for i in range(2)]
    for loc, rule, message in rows:
        stream.write(f"{loc:<{widths[0]}}  {rule:<{widths[1]}}  {message}\n")


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:<20} [{rule.family}] {rule.description}")
        for name in SPEC_RULES:
            print(f"{name:<20} [spec] see `repro lint <spec>.json`")
        return 0

    # --rule names may be Python rules or spec rules; route each to its
    # engine, reject names known to neither.
    try:
        if args.rule:
            rules_selected = all_rules(
                [r for r in args.rule if r not in SPEC_RULES])
        else:
            rules_selected = None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = args.paths or ["src"]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    py_paths, spec_paths = _split_paths(paths)

    findings: List[Finding] = []
    if py_paths:
        findings.extend(lint_paths(py_paths, rules_selected))
    spec_rule_filter = set(args.rule or SPEC_RULES) & set(SPEC_RULES)
    for spec_path in spec_paths:
        findings.extend(f for f in lint_spec_file(spec_path)
                        if f.rule in spec_rule_filter)
    findings.sort(key=Finding.sort_key)

    baseline_path = args.baseline or default_baseline_path()
    if args.write_baseline:
        target = args.baseline or baseline_path or "lint-baseline.json"
        write_baseline(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    baseline = None
    if not args.no_baseline and baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    new = findings if baseline is None else diff_against(findings, baseline)[0]
    known = len(findings) - len(new)

    if args.format == "json":
        report = {
            "baseline": baseline_path if baseline is not None else None,
            "total": len(findings),
            "known": known,
            "new": [f.to_dict() for f in new],
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        if new:
            _print_table(new, sys.stdout)
        summary = f"{len(new)} new finding(s)"
        if known:
            summary += f", {known} known from baseline"
        print(summary if findings else "clean: no findings")
    return 1 if new else 0
