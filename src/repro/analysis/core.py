"""The lint framework: findings, the rule registry, and the engine.

The moving parts mirror the app/scheme registries: rules are classes
registered under a stable kebab-case name (:func:`register_rule`),
looked up with the same unknown-name-lists-the-known-names ValueError
(:func:`get_rule`), and instantiated fresh per run (:func:`all_rules`).

A rule sees one file at a time through a :class:`FileContext` — the
parsed AST, the raw source lines, and the *module path* (the
``repro/...`` suffix), which is what project-aware scoping keys on.
Findings carry a content-based fingerprint (rule, module path, stripped
source line) so the committed baseline survives unrelated line churn.

Per-line suppression::

    risky_thing()  # repro-lint: disable=rule-name
    risky_thing()  # repro-lint: disable=rule-a,rule-b
    risky_thing()  # repro-lint: disable=all

The comment must sit on the *reported* line (for a multi-line
statement, the line the finding points at).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

#: Rule families, in catalog order.
FAMILIES = ("determinism", "api-contract", "observer-purity", "lock-discipline")

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_, \-]+)")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a line of one file."""

    rule: str
    path: str  # module path (posix separators), e.g. "repro/net/wifi.py"
    line: int
    col: int
    message: str
    #: The stripped source line (fingerprint material; "" for JSON specs).
    code: str = ""

    @property
    def fingerprint(self) -> str:
        """Content-based identity for baseline matching: stable across
        unrelated edits that only shift line numbers."""
        return f"{self.rule}|{self.path}|{self.code}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the ``--format json`` report rows)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "code": self.code,
        }


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str, relpath: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def code(self, lineno: int) -> str:
        """The stripped source text of 1-based ``lineno`` ("" if out of
        range — defensive for synthetic nodes)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """A finding anchored at ``node``'s location."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.relpath, line=line, col=col,
                       message=message, code=self.code(line))


class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` (the stable rule ID used in ``--rule`` /
    ``disable=`` / the baseline), ``family`` (one of :data:`FAMILIES`),
    and ``description``, and implement :meth:`check`.
    """

    name: str = ""
    family: str = ""
    description: str = ""

    def check(self, ctx: FileContext) -> List[Finding]:
        raise NotImplementedError


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} needs a name")
    if cls.family not in FAMILIES:
        raise ValueError(
            f"rule {cls.name!r} has unknown family {cls.family!r}; "
            f"expected one of {', '.join(FAMILIES)}"
        )
    if cls.name in _RULES:
        raise ValueError(f"rule {cls.name!r} is already registered")
    _RULES[cls.name] = cls
    return cls


def rule_names() -> List[str]:
    """Registered rule IDs, catalog order (family, then name)."""
    return [cls.name for cls in sorted(
        _RULES.values(), key=lambda c: (FAMILIES.index(c.family), c.name))]


def get_rule(name: str) -> Type[Rule]:
    """One rule class; unknown names raise listing the known IDs."""
    try:
        return _RULES[name]
    except KeyError:
        known = ", ".join(rule_names())
        raise ValueError(
            f"unknown lint rule {name!r}; known rules: {known}"
        ) from None


def all_rules(names: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh instances of the selected (default: all) rules."""
    selected = names if names is not None else rule_names()
    return [get_rule(name)() for name in selected]


# -- import/alias resolution helpers -------------------------------------

class ImportMap:
    """Resolves local names to the dotted module paths they alias.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``; attribute chains
    then resolve through the map (``np.random.shuffle`` ->
    ``numpy.random.shuffle``).
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The fully-resolved dotted path of a Name/Attribute chain, or
        None when the chain is not rooted at a plain name."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = self.aliases.get(parts[0])
        if root is not None:
            parts[0] = root
        return ".".join(parts)

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """The resolved dotted path of a call's target."""
        return self.resolve(call.func)


def attr_chain(node: ast.AST) -> Optional[str]:
    """Unresolved dotted text of a Name/Attribute chain (``self.x.y``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def class_methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    """The class's directly-defined methods by name (async included)."""
    out: Dict[str, ast.FunctionDef] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[stmt.name] = stmt  # type: ignore[assignment]
    return out


def decorator_names(cls: ast.ClassDef) -> List[str]:
    """Textual names of a class's decorators (calls unwrapped)."""
    names = []
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        chain = attr_chain(target)
        if chain:
            names.append(chain)
    return names


def is_dataclass(cls: ast.ClassDef) -> bool:
    return any(name.split(".")[-1] == "dataclass" for name in decorator_names(cls))


# -- suppression ----------------------------------------------------------

def suppressions(source: str) -> Dict[int, set]:
    """Per-line suppressed rule sets: ``{lineno: {"rule", ...}}``."""
    table: Dict[int, set] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            table[i] = {part.strip() for part in match.group(1).split(",")
                        if part.strip()}
    return table


def apply_suppressions(findings: List[Finding], source: str) -> List[Finding]:
    table = suppressions(source)
    if not table:
        return findings
    kept = []
    for f in findings:
        rules = table.get(f.line)
        if rules and ("all" in rules or f.rule in rules):
            continue
        kept.append(f)
    return kept


# -- the engine -----------------------------------------------------------

def module_relpath(path: str) -> str:
    """The stable module path of a file: the ``repro/...`` suffix when
    the file lives under the package, else the path as given (posix
    separators, leading ``./`` stripped) — what fingerprints and
    project-aware scoping key on."""
    norm = path.replace(os.sep, "/")
    parts = norm.split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return norm.lstrip("./") or norm


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    seen = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        seen.append(os.path.join(dirpath, name))
        else:
            seen.append(path)
    return iter(sorted(dict.fromkeys(seen)))


def lint_source(
    source: str,
    relpath: str,
    rules: Optional[Sequence[Rule]] = None,
    path: Optional[str] = None,
) -> List[Finding]:
    """Lint one source string as though it lived at ``relpath``.

    The unit the fixture tests drive: path-scoped rules see ``relpath``,
    so a fixture can impersonate any module of the tree.  Raises
    SyntaxError for unparseable source.
    """
    tree = ast.parse(source, filename=path or relpath)
    ctx = FileContext(path or relpath, relpath, source, tree)
    findings: List[Finding] = []
    for rule in (rules if rules is not None else all_rules()):
        findings.extend(rule.check(ctx))
    return sorted(apply_suppressions(findings, source),
                  key=Finding.sort_key)


def lint_file(path: str, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Lint one file (see :func:`lint_source`); unreadable or
    unparseable files produce a single ``parse-error`` finding."""
    relpath = module_relpath(path)
    try:
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
    except OSError as exc:
        return [Finding(rule="parse-error", path=relpath, line=1, col=0,
                        message=f"cannot read file: {exc}")]
    try:
        return lint_source(source, relpath, rules, path=path)
    except SyntaxError as exc:
        return [Finding(rule="parse-error", path=relpath,
                        line=exc.lineno or 1, col=exc.offset or 0,
                        message=f"syntax error: {exc.msg}")]


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``; findings in stable order."""
    rules = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules))
    return sorted(findings, key=Finding.sort_key)
