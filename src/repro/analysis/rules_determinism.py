"""Determinism rules: keep artifact bytes independent of hash order,
process entropy, and wall-clock time.

The family exists because the byte-identity contract has been broken
twice by exactly these patterns (str-hash-order voting in PR 2, a
wall-clock epoch anchor in PR 8); each rule encodes one of those bug
classes so it is caught at diff time instead of in a golden-hash test
three PRs later.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.core import (
    FileContext,
    Finding,
    ImportMap,
    Rule,
    register_rule,
)
from repro.analysis.project import (
    RNG_EXEMPT_FILES,
    SERIALIZATION_PATHS,
    in_paths,
)

#: ``random`` module functions that consume the unseeded global stream.
_RANDOM_GLOBAL_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: ``numpy.random`` constructors that are fine *when given a seed*.
_NP_SEEDED_CTORS = frozenset({
    "default_rng", "Generator", "MT19937", "PCG64", "Philox",
    "SeedSequence", "SFC64",
})

#: Wall-clock reads (resolved dotted names).  ``time.perf_counter`` /
#: ``time.monotonic`` are the sanctioned interval clocks.
_WALL_CLOCK_CALLS = frozenset({
    "time.asctime",
    "time.ctime",
    "time.gmtime",
    "time.localtime",
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
})


def _set_expr_names(tree: ast.Module) -> (Set[str], Set[str]):
    """Names (locals and ``self.X`` attrs) assigned syntactic sets."""
    names: Set[str] = set()
    attrs: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None or not _is_set_literalish(value):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attrs.add(target.attr)
    return names, attrs


def _is_set_literalish(node: ast.AST) -> bool:
    """A syntactic set: literal, comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register_rule
class SetIterationRule(Rule):
    """Iteration over a set in a serialization/voting path.

    Set iteration order follows the hash seed, so any set that flows
    into a digest, golden file, or vote tally must pass through
    ``sorted()`` first.  (Dicts are insertion-ordered since 3.7 and are
    not flagged.)  Membership tests, order-insensitive reductions
    (``min``/``max``/``sum``/``len``/``any``/``all``), and set
    comprehensions over sets (unordered in, unordered out) are fine.
    """

    name = "set-iteration"
    family = "determinism"
    description = ("unordered set iteration in a serialization path; "
                   "wrap in sorted()")

    _ORDER_SENSITIVE_CALLS = ("list", "tuple")
    _ORDER_INSENSITIVE_CALLS = ("sorted", "min", "max", "sum", "len",
                                "any", "all", "frozenset", "set")

    def check(self, ctx: FileContext) -> List[Finding]:
        if not in_paths(ctx.relpath, SERIALIZATION_PATHS):
            return []
        names, attrs = _set_expr_names(ctx.tree)

        def is_set(node: ast.AST) -> bool:
            if _is_set_literalish(node):
                return True
            if isinstance(node, ast.Name):
                return node.id in names
            return (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in attrs)

        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and is_set(node.iter):
                findings.append(ctx.finding(
                    self.name, node.iter,
                    "iterating a set directly; order follows the hash "
                    "seed — use sorted(...)"))
            elif isinstance(node, (ast.ListComp, ast.DictComp,
                                   ast.GeneratorExp)):
                # SetComp is exempt: a set built from a set stays
                # unordered, so no order leaks.
                for gen in node.generators:
                    if is_set(gen.iter):
                        findings.append(ctx.finding(
                            self.name, gen.iter,
                            "comprehension over a set; order follows the "
                            "hash seed — use sorted(...)"))
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Name)
                        and func.id in self._ORDER_SENSITIVE_CALLS
                        and node.args and is_set(node.args[0])):
                    findings.append(ctx.finding(
                        self.name, node,
                        f"{func.id}() over a set preserves hash order — "
                        "use sorted(...)"))
                elif (isinstance(func, ast.Attribute) and func.attr == "join"
                        and node.args and is_set(node.args[0])):
                    findings.append(ctx.finding(
                        self.name, node,
                        "join() over a set preserves hash order — "
                        "use sorted(...)"))
        return findings


@register_rule
class UnseededRngRule(Rule):
    """Module-level / unseeded RNG use outside ``sim/rng.py``.

    All randomness must come from an explicitly seeded generator —
    ``RngRegistry.stream()`` in simulation code, ``random.Random(seed)``
    / ``np.random.default_rng(seed)`` elsewhere — so every artifact is
    a pure function of the spec seed.
    """

    name = "unseeded-rng"
    family = "determinism"
    description = ("global or unseeded RNG call; derive a seeded "
                   "generator instead")

    def check(self, ctx: FileContext) -> List[Finding]:
        if ctx.relpath in RNG_EXEMPT_FILES:
            return []
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node)
            if not resolved:
                continue
            message = self._verdict(resolved, node)
            if message:
                findings.append(ctx.finding(self.name, node, message))
        return findings

    @staticmethod
    def _verdict(resolved: str, call: ast.Call) -> Optional[str]:
        parts = resolved.split(".")
        if parts[0] == "random" and len(parts) == 2:
            func = parts[1]
            if func in _RANDOM_GLOBAL_FUNCS:
                return (f"random.{func}() uses the process-global stream; "
                        "use random.Random(seed) or RngRegistry.stream()")
            if func in ("Random", "SystemRandom") and not (call.args or call.keywords):
                return (f"random.{func}() constructed without a seed; "
                        "pass an explicit seed")
            return None
        if parts[:2] == ["numpy", "random"] and len(parts) == 3:
            func = parts[2]
            if func in _NP_SEEDED_CTORS:
                if not (call.args or call.keywords):
                    return (f"np.random.{func}() constructed without a "
                            "seed; pass an explicit seed")
                return None
            return (f"np.random.{func}() uses numpy's global state; "
                    "use np.random.default_rng(seed)")
        return None


@register_rule
class WallClockRule(Rule):
    """Wall-clock reads: ``time.time()`` / ``datetime.now()`` and kin.

    Simulation, checkpoint, and verification code must be a function of
    sim-time only; harness code timing real intervals wants
    ``time.perf_counter()`` / ``time.monotonic()``, which never leak
    the host's clock into an artifact (the PR 8 calendar-queue bug was
    a wall-clock epoch anchor).
    """

    name = "wall-clock"
    family = "determinism"
    description = ("wall-clock read; use time.perf_counter()/"
                   "monotonic() for intervals")

    def check(self, ctx: FileContext) -> List[Finding]:
        imports = ImportMap(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve_call(node)
            if resolved in _WALL_CLOCK_CALLS:
                findings.append(ctx.finding(
                    self.name, node,
                    f"{resolved}() reads the wall clock; use "
                    "time.perf_counter()/monotonic() for intervals, or "
                    "thread a timestamp in explicitly"))
        return findings


@register_rule
class IdOrderRule(Rule):
    """Ordering by ``id()``: memory-address order differs per process.

    ``id()`` as a dict key (identity memoization) is fine; ``id()`` as
    a *sort key* or in comparisons makes the order an accident of the
    allocator.
    """

    name = "id-order"
    family = "determinism"
    description = "ordering by id(); memory addresses differ per process"

    _SORTERS = ("sorted", "min", "max")

    def check(self, ctx: FileContext) -> List[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                is_sorter = (isinstance(func, ast.Name)
                             and func.id in self._SORTERS)
                is_sort_method = (isinstance(func, ast.Attribute)
                                  and func.attr == "sort")
                if is_sorter or is_sort_method:
                    for kw in node.keywords:
                        if kw.arg == "key" and self._key_uses_id(kw.value):
                            findings.append(ctx.finding(
                                self.name, node,
                                "sort key uses id(); ordering follows "
                                "memory addresses — key on stable fields"))
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                if sum(1 for s in sides if self._is_id_call(s)) >= 2:
                    findings.append(ctx.finding(
                        self.name, node,
                        "comparing id() values; memory addresses differ "
                        "per process"))
        return findings

    @staticmethod
    def _is_id_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id")

    @classmethod
    def _key_uses_id(cls, key: ast.AST) -> bool:
        if isinstance(key, ast.Name) and key.id == "id":
            return True
        if isinstance(key, ast.Lambda):
            return any(cls._is_id_call(sub) for sub in ast.walk(key.body))
        return False
