"""Imports every rule module so the registry is fully populated.

Import this (not the individual ``rules_*`` modules) before calling
:func:`repro.analysis.core.all_rules`; the CLI and tests both do.
"""

from repro.analysis import rules_contracts  # noqa: F401
from repro.analysis import rules_determinism  # noqa: F401
from repro.analysis import rules_locks  # noqa: F401
from repro.analysis import rules_observers  # noqa: F401
