"""Benchmark suite definitions.

Four microbenchmark suites exercise the layers the hot-path work targets
(simulation kernel, trace monitor, WiFi broadcast, checkpoint rounds);
the ``scenarios`` suite times full named-scenario cases end to end, and
the ``sweep_throughput`` suite times the sweep *executor* — warm-pool
re-runs, fully-cached resumes, and raw artifact streaming.  The
``telemetry`` suite gates the QoS monitor: its sampling overhead on a
full scenario case and the kernel cost of the ``call_every`` sampler.

Each case returns a metrics dict with at least ``wall_s``; kernel-driven
cases add ``events``, ``events_per_s``, and (for scenario runs)
``sim_s`` / ``sim_s_per_wall_s`` — simulated seconds per wall second is
the simulator's "speed of light" number.  The checkpoint suite also
gauges peak host memory (tracemalloc) of snapshotting EdgeML's multi-MB
stage state; ``benchmarks/baselines/pre_pr/`` holds the eager-copy
number the copy-on-write work is measured against.

Microbenchmark cases repeat a few times and keep the best wall time (the
standard trick to strip scheduler noise); scenario cases run once — they
are long enough to be stable.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.sim.core import Simulator
from repro.sim.monitor import Trace
from repro.sim.rng import RngRegistry

#: suite name -> list of (case name, factory); the factory receives
#: ``quick`` and returns a zero-arg callable measuring one run.
CaseFn = Callable[[], Dict[str, float]]
SUITES: Dict[str, List[Tuple[str, Callable[[bool], CaseFn]]]] = {}

#: Repeats for microbenchmark cases (best-of); scenario cases run once.
#: Quick mode repeats more: its cases are milliseconds long, so best-of
#: needs more samples to shake scheduler noise out of the CI gate.
MICRO_REPEATS = 3
MICRO_REPEATS_QUICK = 5


def _register(suite: str, name: str):
    def deco(factory: Callable[[bool], CaseFn]):
        SUITES.setdefault(suite, []).append((name, factory))
        return factory
    return deco


def _events_per_s(events: int, wall: float) -> float:
    return events / wall if wall > 0 else 0.0


# -- sim kernel ---------------------------------------------------------------
@_register("sim_kernel", "timeout_churn")
def _timeout_churn(quick: bool) -> CaseFn:
    """Many processes ticking short timeouts: raw event-loop throughput."""
    n_procs, n_ticks = (20, 500) if quick else (50, 2000)

    def run() -> Dict[str, float]:
        sim = Simulator()

        def ticker(sim: Simulator, n: int):
            for _ in range(n):
                yield sim.timeout(0.01)

        for _ in range(n_procs):
            sim.process(ticker(sim, n_ticks))
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


@_register("sim_kernel", "call_in_storm")
def _call_in_storm(quick: bool) -> CaseFn:
    """Scheduled-callback delivery: the ``call_in`` fast path."""
    n = 20_000 if quick else 100_000

    def run() -> Dict[str, float]:
        sim = Simulator()
        hits = [0]

        def bump() -> None:
            hits[0] += 1

        for i in range(n):
            sim.call_in(0.001 * (i % 97), bump)
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        assert hits[0] == n
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


@_register("sim_kernel", "process_spawn")
def _process_spawn(quick: bool) -> CaseFn:
    """Short-lived process creation/teardown (source drivers, transfers)."""
    n = 5_000 if quick else 20_000

    def run() -> Dict[str, float]:
        sim = Simulator()

        def short(sim: Simulator):
            yield sim.timeout(0.001)

        def spawner(sim: Simulator):
            for _ in range(n):
                yield sim.process(short(sim))

        sim.process(spawner(sim))
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


# -- monitor ------------------------------------------------------------------
@_register("monitor", "record_and_select")
def _record_and_select(quick: bool) -> CaseFn:
    """Trace recording plus windowed metric queries (harness pattern)."""
    n_records, n_queries = (20_000, 200) if quick else (100_000, 1000)
    categories = ["sink_output", "checkpoint", "heartbeat", "recovery_finished"]

    def run() -> Dict[str, float]:
        trace = Trace()
        t0 = time.perf_counter()
        for i in range(n_records):
            trace.record(float(i), categories[i % len(categories)],
                         region="region0", latency=float(i % 37))
        total = 0
        for q in range(n_queries):
            since = float(q % 50) * (n_records / 100)
            total += sum(
                1 for _ in trace.select("sink_output", since=since,
                                        until=since + n_records / 10)
            )
            total += trace.count_of("recovery_finished")
        wall = time.perf_counter() - t0
        ops = n_records + 2 * n_queries
        return {"wall_s": wall, "events": ops,
                "events_per_s": _events_per_s(ops, wall), "checksum": total}

    return run


@_register("monitor", "counters")
def _counters(quick: bool) -> CaseFn:
    """Counter increments through cached handles vs. name lookups."""
    n = 50_000 if quick else 200_000

    def run() -> Dict[str, float]:
        trace = Trace()
        handle = trace.counter("net.wifi.bytes")
        t0 = time.perf_counter()
        for i in range(n):
            handle.add(1024.0)
            if i % 16 == 0:
                trace.count("ft.network_bytes", 64.0)
        wall = time.perf_counter() - t0
        return {"wall_s": wall, "events": n,
                "events_per_s": _events_per_s(n, wall)}

    return run


# -- wifi broadcast -----------------------------------------------------------
def _make_cell(n_members: int):
    from repro.net.wifi import WifiCell

    sim = Simulator()
    rng = RngRegistry(0)
    trace = Trace()
    cell = WifiCell(sim, rng, name="bench", trace=trace)
    for i in range(n_members):
        cell.join(f"m{i}", lambda msg: None)
    return sim, cell


@_register("wifi_broadcast", "broadcast_rounds")
def _broadcast_rounds(quick: bool) -> CaseFn:
    """Back-to-back UDP broadcast rounds over an 8-member cell."""
    n_rounds, n_blocks = (20, 128) if quick else (60, 512)

    def run() -> Dict[str, float]:
        sim, cell = _make_cell(8)
        indices = np.arange(n_blocks)

        def driver():
            for _ in range(n_rounds):
                yield from cell.udp_broadcast_round("m0", indices, 1024)

        sim.process(driver())
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


@_register("wifi_broadcast", "unicast_stream")
def _unicast_stream(quick: bool) -> CaseFn:
    """A stream of TCP-like unicasts (the per-tuple data path)."""
    n_msgs = 500 if quick else 2000

    def run() -> Dict[str, float]:
        from repro.net.packet import Message

        sim, cell = _make_cell(4)

        def driver():
            for i in range(n_msgs):
                msg = Message(src="m0", dst=f"m{1 + i % 3}", size=4096,
                              kind="tuple", payload=("tuple", "op", None))
                yield from cell.tcp_unicast(msg)

        sim.process(driver())
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


# -- checkpoint rounds --------------------------------------------------------
@_register("checkpoint", "broadcast_checkpoint")
def _broadcast_checkpoint(quick: bool) -> CaseFn:
    """Full multi-phase checkpoint broadcasts (UDP rounds + TCP tree)."""
    n_ckpts, size = (4, 128 * 1024) if quick else (10, 512 * 1024)

    def run() -> Dict[str, float]:
        from repro.checkpoint.broadcast import broadcast_checkpoint

        sim, cell = _make_cell(8)

        def driver():
            for _ in range(n_ckpts):
                yield from broadcast_checkpoint(sim, cell, "m0", size)

        sim.process(driver())
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


@_register("checkpoint", "edgeml_snapshot_memory")
def _edgeml_snapshot_memory(quick: bool) -> CaseFn:
    """Peak host memory of checkpointing EdgeML's multi-MB stage state.

    Mirrors the default split profile (four partitions holding ~4.6 MB
    of weights plus the classifier head), runs N checkpoint versions
    through a :class:`CheckpointStore`, and mutates only the classifier
    between versions — the realistic shape where partition weights never
    change.  ``peak_kb`` is the tracemalloc high-water mark across the
    rounds: with copy-on-write snapshots an unchanged stage costs O(1)
    per version; the committed eager-copy number lives in
    ``benchmarks/baselines/pre_pr/BENCH_checkpoint.json``.
    """
    n_versions = 4 if quick else 10

    def run() -> Dict[str, float]:
        import tracemalloc

        from repro.apps.edgeml.app import EdgeMLParams
        from repro.apps.edgeml.operators import (
            FEATURE_DIM,
            PartitionStage,
            PrototypeClassifier,
        )
        from repro.checkpoint.store import CheckpointStore
        from repro.core.operator import OperatorContext
        from repro.core.tuples import StreamTuple

        params = EdgeMLParams()
        ops: Dict[str, Any] = {}
        for k, info in enumerate(params.stage_profile()):
            ops[f"F{k}"] = PartitionStage(
                f"F{k}", layers=info["layers"], weight_bytes=info["weight_bytes"],
                out_tensor_bytes=info["out_tensor_bytes"], cost_s=info["cost_s"],
            )
        classifier = PrototypeClassifier(
            "P", n_classes=params.n_classes, cost_s=params.classifier_cost_s)
        ops["P"] = classifier
        for op in ops.values():
            getattr(op, "weights", None)  # materialize weight state up front
        ctx = OperatorContext(now=0.0, rng=RngRegistry(0))
        gen = np.random.default_rng(0xC0FFEE)
        store = CheckpointStore()
        tracemalloc.start()
        t0 = time.perf_counter()
        for version in range(1, n_versions + 1):
            store.begin_version(version, list(ops))
            for node_id, op in ops.items():
                store.put(version, node_id, frozenset([node_id]),
                          {op.name: op.snapshot()}, max(1, op.state_size()))
            # Between checkpoints only the classifier head learns.
            feat = gen.standard_normal(FEATURE_DIM)
            classifier.process(
                StreamTuple({"features": feat, "true_class": 1}, 1024, 0.0),
                ctx,
            )
        wall = time.perf_counter() - t0
        retained, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return {
            "wall_s": wall,
            "versions": float(n_versions),
            "peak_kb": peak / 1024.0,
            "retained_kb": retained / 1024.0,
        }

    return run


# -- full scenarios -----------------------------------------------------------
_SCENARIO_CASES = (
    ("paper-fig8", "bcp", "ms-8", 3),
    ("paper-fig8", "signalguru", "ms-8", 3),
    ("failure-cascade", "bcp", "ms-8", 3),
    ("edgeml-baseline", "edgeml", "ms-8", 3),
)


def _scenario_case(scenario: str, app: str, scheme: str, seed: int):
    def factory(quick: bool) -> CaseFn:
        def run() -> Dict[str, float]:
            from repro.results.model import CaseResult
            from repro.scenarios import EventDirector, get
            from repro.scenarios.runner import build_system

            spec = get(scenario)
            if quick:
                spec = spec.quick()
            system = build_system(spec, app, scheme, seed)
            director = EventDirector(system, spec)
            director.install()
            t0 = time.perf_counter()
            system.start()
            director.schedule()
            system.run(spec.duration_s)
            wall = time.perf_counter() - t0
            case = CaseResult.from_report(
                scenario=spec.name, app=app, scheme=scheme, seed=seed,
                report=system.metrics(warmup_s=spec.warmup_s),
                region_stopped=[r.stopped for r in system.regions],
            )
            ev = system.sim.events_processed
            return {
                "wall_s": wall,
                "sim_s": spec.duration_s,
                "sim_s_per_wall_s": spec.duration_s / wall if wall > 0 else 0.0,
                "events": ev,
                "events_per_s": _events_per_s(ev, wall),
                "output_tuples": case.total_output_tuples,
            }

        return run

    return factory


for _scenario, _app, _scheme, _seed in _SCENARIO_CASES:
    _register("scenarios", f"{_scenario}/{_app}/{_scheme}")(
        _scenario_case(_scenario, _app, _scheme, _seed)
    )


@_register("scenarios", "paper-fig8/full-sweep")
def _fig8_full_sweep(quick: bool) -> CaseFn:
    """The acceptance-criterion number: the whole 14-case Fig. 8 matrix,
    serially, exactly as ``scenario sweep paper-fig8 --jobs 1`` runs it."""

    def run() -> Dict[str, float]:
        from repro.scenarios import get, run_sweep

        spec = get("paper-fig8")
        if quick:
            spec = spec.quick()
        n_cases = len(spec.matrix)
        t0 = time.perf_counter()
        run_sweep(spec, jobs=1)
        wall = time.perf_counter() - t0
        total_sim = spec.duration_s * n_cases
        return {
            "wall_s": wall,
            "n_cases": n_cases,
            "sim_s": total_sim,
            "sim_s_per_wall_s": total_sim / wall if wall > 0 else 0.0,
        }

    return run


# -- sweep throughput ---------------------------------------------------------
def _mini_fig8_spec(quick: bool):
    """A reduced Fig. 8 spec for executor benchmarks: 2 cases (base +
    ms-8 on BCP), time-compressed so the executor machinery — pool
    lifecycle, spec shipping, caching, streaming — is a visible share
    of the wall time rather than sim noise."""
    import dataclasses

    from repro.scenarios import get
    from repro.scenarios.spec import MatrixSpec

    spec = get("paper-fig8")
    spec = dataclasses.replace(
        spec, matrix=MatrixSpec(apps=("bcp",), schemes=("base", "ms-8"), seeds=(3,)))
    return spec.quick(120.0 if quick else 300.0)


@_register("sweep_throughput", "fig8-mini/serial")
def _sweep_serial(quick: bool) -> CaseFn:
    """In-process serial sweep: the single-worker reference number."""

    def run() -> Dict[str, float]:
        from repro.scenarios import run_sweep

        spec = _mini_fig8_spec(quick)
        n = len(spec.matrix)
        t0 = time.perf_counter()
        run_sweep(spec, jobs=1)
        wall = time.perf_counter() - t0
        return {"wall_s": wall, "n_cases": float(n),
                "cases_per_s": n / wall if wall > 0 else 0.0}

    return run


@_register("sweep_throughput", "fig8-mini/warm-pool")
def _sweep_warm_pool(quick: bool) -> CaseFn:
    """Parallel sweep against an already-warm pool (the steady-state
    cost of re-running a sweep: no pool build, no spec shipping)."""

    def run() -> Dict[str, float]:
        from repro.scenarios import executor, run_sweep

        spec = _mini_fig8_spec(quick)
        n = len(spec.matrix)
        run_sweep(spec, jobs=2)  # untimed: builds + primes the pool
        reuses_before = executor.stats["pool_reuses"]
        t0 = time.perf_counter()
        run_sweep(spec, jobs=2)
        wall = time.perf_counter() - t0
        if executor.stats["pool_reuses"] <= reuses_before:
            # A cold pool timed as "warm" would poison the CI ratio gate.
            raise RuntimeError("warm-pool case measured a cold pool")
        return {"wall_s": wall, "n_cases": float(n),
                "cases_per_s": n / wall if wall > 0 else 0.0}

    return run


@_register("sweep_throughput", "fig8-mini/resume-hit")
def _sweep_resume_hit(quick: bool) -> CaseFn:
    """Fully-cached resume: every row loads from the case cache, no
    simulation — the cost of re-materializing a finished sweep."""

    def run() -> Dict[str, float]:
        import shutil
        import tempfile

        from repro.scenarios import run_sweep

        spec = _mini_fig8_spec(quick)
        n = len(spec.matrix)
        rounds = 10  # a single cached resume is sub-ms: too noisy to gate
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
        try:
            run_sweep(spec, jobs=1, resume_dir=cache_dir)  # untimed: primes
            t0 = time.perf_counter()
            for _ in range(rounds):
                run_sweep(spec, jobs=1, resume_dir=cache_dir)
            wall = time.perf_counter() - t0
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
        resumed = n * rounds
        return {"wall_s": wall, "n_cases": float(resumed),
                "cases_per_s": resumed / wall if wall > 0 else 0.0}

    return run


@_register("sweep_throughput", "stream-writer/rows")
def _stream_writer_rows(quick: bool) -> CaseFn:
    """Raw streaming-writer throughput over synthetic case rows."""
    n_rows = 500 if quick else 2000

    def run() -> Dict[str, float]:
        import os as _os
        import tempfile

        from repro.scenarios.executor import StreamingSweepWriter

        rows = [
            {
                "scenario": "synthetic", "app": "bcp", "scheme": "ms-8",
                "seed": i, "recoveries": i % 3,
                "regions": {"region0": {"output_tuples": i * 7,
                                        "throughput_tps": i * 0.25,
                                        "mean_latency_s": 1.5,
                                        "p95_latency_s": 3.25,
                                        "stopped": False}},
                "end_to_end_latency_s": 2.125, "preserved_bytes": i * 1024,
            }
            for i in range(n_rows)
        ]
        fd, path = tempfile.mkstemp(suffix=".json")
        _os.close(fd)
        try:
            t0 = time.perf_counter()
            writer = StreamingSweepWriter(path, compact=True)
            for row in rows:
                writer.write_row(row)
            writer.finish("synthetic", {"name": "synthetic"}, n_rows)
            wall = time.perf_counter() - t0
        finally:
            _os.unlink(path)
        return {"wall_s": wall, "rows": float(n_rows),
                "rows_per_s": n_rows / wall if wall > 0 else 0.0}

    return run


# -- telemetry ----------------------------------------------------------------
@_register("telemetry", "flash-crowd/overhead")
def _telemetry_overhead(quick: bool) -> CaseFn:
    """QoS-monitor sampling overhead on a full scenario case.

    Runs the same (spec, app, scheme, seed) with telemetry off and on
    (~30 samples over the run) in *interleaved* pairs, then compares
    the per-arm minimum walls (``overhead_frac`` = enabled/disabled
    minus one).  Interleaving keeps both arms exposed to the same
    machine weather; per-arm minima strip the rest of the scheduler
    noise.  ``wall_s`` is the best *enabled* wall, so the standard
    compare gate bounds the absolute cost too;
    ``tests/perf/test_telemetry_overhead.py`` gates the fraction.
    """

    def run() -> Dict[str, float]:
        import dataclasses

        from repro.scenarios import get
        from repro.scenarios.runner import run_case
        from repro.scenarios.spec import TelemetrySpec

        # Quick mode time-compresses the scenario, which inflates the
        # *fraction*: ~30 fixed-cost samples land on a tens-of-ms run.
        # The 5% overhead gate therefore reads the full-length number;
        # quick's wall_s still feeds the CI ratio gate.
        spec = get("flash-crowd")
        reps = 3
        if quick:
            spec = spec.quick(120.0)
            reps = 5
        spec_on = dataclasses.replace(
            spec, telemetry=TelemetrySpec(interval_s=spec.duration_s / 30.0))

        def one(s) -> float:
            t0 = time.perf_counter()
            run_case(s, "bcp", "ms-8", 3)
            return time.perf_counter() - t0

        one(spec)  # untimed warm-up: imports and caches, not the gate
        offs, ons = [], []
        for _ in range(reps):
            offs.append(one(spec))
            ons.append(one(spec_on))
        off, on = min(offs), min(ons)
        return {
            "wall_s": on,
            "wall_off_s": off,
            "overhead_frac": (on / off - 1.0) if off > 0 else 0.0,
        }

    return run


@_register("telemetry", "kernel/call-every")
def _telemetry_call_every(quick: bool) -> CaseFn:
    """Kernel cost of the telemetry sampling machinery itself: timeout
    churn with a ``call_every`` sampler armed and inline event counting
    on — the exact run-loop configuration a live monitor selects.
    Repeats internally (the suite is single-run for the overhead case's
    sake) and keeps the best wall."""
    n_procs, n_ticks = (10, 500) if quick else (30, 2000)
    reps = MICRO_REPEATS_QUICK if quick else MICRO_REPEATS

    def run() -> Dict[str, float]:
        def once() -> Dict[str, float]:
            sim = Simulator()
            samples = [0]

            def ticker(sim: Simulator, n: int):
                for _ in range(n):
                    yield sim.timeout(0.01)

            for _ in range(n_procs):
                sim.process(ticker(sim, n_ticks))
            cancel = sim.call_every(
                0.05, lambda: samples.__setitem__(0, samples[0] + 1))
            sim.count_inline = True
            horizon = n_ticks * 0.01
            t0 = time.perf_counter()
            sim.run(until=horizon)
            wall = time.perf_counter() - t0
            cancel()
            assert samples[0] > 0
            ev = sim.events_processed
            return {"wall_s": wall, "events": ev,
                    "events_per_s": _events_per_s(ev, wall),
                    "samples": float(samples[0])}

        best: Dict[str, float] = {}
        for _ in range(reps):
            metrics = once()
            if not best or metrics["wall_s"] < best["wall_s"]:
                best = metrics
        return best

    return run


# -- verify (invariant harness) -----------------------------------------------
@_register("verify", "paper-fig8/overhead")
def _verify_overhead(quick: bool) -> CaseFn:
    """Armed-invariant-harness overhead on a full scenario case.

    Same protocol as the telemetry overhead case: the identical
    (spec, app, scheme, seed) runs disarmed and armed in *interleaved*
    pairs, per-arm minima are compared, and ``overhead_frac`` is
    armed/disarmed minus one.  The scenario is paper-fig8 on ms-8 — the
    checkpointing scheme is the one whose trace categories (per-tuple
    source ingests included) the harness actually subscribes to, so it
    is the worst case.  ``tests/perf/test_verify_overhead.py`` gates
    the fraction at 10%; the standard compare gate bounds ``wall_s``.
    """

    def run() -> Dict[str, float]:
        from repro.scenarios import get
        from repro.scenarios.runner import run_case

        spec = get("paper-fig8")
        reps = 3
        if quick:
            spec = spec.quick(120.0)
            reps = 5

        def one(verify: bool) -> float:
            t0 = time.perf_counter()
            case = run_case(spec, "bcp", "ms-8", 3, verify=verify)
            wall = time.perf_counter() - t0
            if verify and case.violations:
                raise RuntimeError(
                    f"paper-fig8 armed run violated invariants: "
                    f"{[v.invariant for v in case.violations]}")
            return wall

        one(True)  # untimed warm-up: imports and caches, not the gate
        offs, ons = [], []
        for _ in range(reps):
            offs.append(one(False))
            ons.append(one(True))
        off, on = min(offs), min(ons)
        return {
            "wall_s": on,
            "wall_off_s": off,
            "overhead_frac": (on / off - 1.0) if off > 0 else 0.0,
        }

    return run


# -- fleet scale --------------------------------------------------------------
def _build_object_phones(n: int):
    from repro.device.phone import Phone
    from repro.net.topology import Position

    return [Phone(f"p{i}", Position(0.0, 0.0)) for i in range(n)]


def _build_fleet(n: int):
    from repro.device.fleet import Fleet
    from repro.net.topology import Position

    fleet = Fleet()
    pos = Position(0.0, 0.0)
    for i in range(n):
        fleet.create_phone(f"p{i}", pos)
    return fleet


@_register("fleet", "battery-tick/object")
def _battery_tick_object(quick: bool) -> CaseFn:
    """The per-object battery loop at fleet scale: one Python call chain
    per phone per tick (the Region._battery_loop object path)."""
    n, ticks = (2_000, 5) if quick else (10_000, 20)

    def run() -> Dict[str, float]:
        sim = Simulator()
        phones = _build_object_phones(n)

        def loop():
            for _ in range(ticks):
                yield sim.timeout(5.0)
                for phone in phones:
                    if not phone.alive:
                        continue
                    phone.battery.drain_idle(5.0)
                    if phone.battery.is_dead or phone.battery.is_critical:
                        raise RuntimeError("bench phones must stay healthy")

        sim.process(loop())
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = n * ticks
        return {"wall_s": wall, "events": float(ev), "n_phones": float(n),
                "events_per_s": _events_per_s(ev, wall)}

    return run


@_register("fleet", "battery-tick/fleet")
def _battery_tick_fleet(quick: bool) -> CaseFn:
    """The vectorized sweep over the same population: one numpy sweep
    per tick regardless of n (more ticks than the object case so the
    wall time stays measurable — ``events_per_s`` is the comparable
    number, and the 10x gate in tests/perf/test_fleet_scaling.py reads
    exactly that ratio)."""
    n, ticks = (2_000, 500) if quick else (10_000, 2_000)

    def run() -> Dict[str, float]:
        sim = Simulator()
        fleet = _build_fleet(n)
        indices = np.arange(n, dtype=np.int64)

        def loop():
            for _ in range(ticks):
                yield sim.timeout(5.0)
                dead, critical = fleet.sweep_battery(indices, 5.0)
                if dead.size or critical.size:
                    raise RuntimeError("bench phones must stay healthy")

        sim.process(loop())
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = n * ticks
        return {"wall_s": wall, "events": float(ev), "n_phones": float(n),
                "events_per_s": _events_per_s(ev, wall)}

    return run


def _broadcast_case(n_members: int, n_rounds: int, uniform: bool) -> Dict[str, float]:
    from repro.net.loss import BernoulliLoss

    sim, cell = _make_cell(n_members)
    if not uniform:
        # Re-model the *sender's* loss: uniformity breaks (forcing the
        # per-member fallback loop) while every receiver keeps the same
        # BernoulliLoss(0.08), so both arms do identical receiver work.
        cell.set_loss("m0", BernoulliLoss(0.5))
    n_blocks = 64
    indices = np.arange(n_blocks)

    def driver():
        for _ in range(n_rounds):
            yield from cell.udp_broadcast_round("m0", indices, 1024)

    sim.process(driver())
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    # The work that scales with fleet size: per-receiver fragment draws.
    total_frags = n_rounds * (n_members - 1) * n_blocks
    return {"wall_s": wall, "events": float(total_frags),
            "n_members": float(n_members),
            "events_per_s": _events_per_s(total_frags, wall)}


@_register("fleet", "broadcast-round/batched")
def _broadcast_batched(quick: bool) -> CaseFn:
    """UDP broadcast over a fleet-sized cell, uniform loss: one 2-D
    numpy draw covers every receiver."""
    n_members, n_rounds = (500, 3) if quick else (2_000, 8)

    def run() -> Dict[str, float]:
        return _broadcast_case(n_members, n_rounds, uniform=True)

    return run


@_register("fleet", "broadcast-round/member-loop")
def _broadcast_member_loop(quick: bool) -> CaseFn:
    """The same broadcast with uniformity broken: the per-member
    fallback draws each receiver's fragments in Python."""
    n_members, n_rounds = (500, 3) if quick else (2_000, 8)

    def run() -> Dict[str, float]:
        return _broadcast_case(n_members, n_rounds, uniform=False)

    return run


def _rss_case(backend: str, n: int) -> Dict[str, float]:
    """Peak traced memory of one whole scenario case at ``n`` phones.

    Runs a quick paper-fig8 case with the region populations scaled to
    ``n`` and tracemalloc armed around the entire build + run (numpy
    allocations are tracemalloc-visible since 1.22, so the fleet arrays
    are counted).  The scheme is ``base``: ms-8's TR-SMC deliberately
    replicates every checkpoint onto every member, which at 16k members
    measures checkpoint fan-out, not device-state scaling.  The
    simulator, graph, and trace machinery are a fixed cost, so
    ``bytes_per_phone`` *falls* as n grows — the sub-linear curve
    tests/perf/test_fleet_scaling.py gates.
    """
    import dataclasses
    import tracemalloc

    from repro.scenarios import EventDirector, get
    from repro.scenarios.runner import build_system

    spec = dataclasses.replace(
        get("paper-fig8").quick(), device_backend=backend
    ).scaled_phones(n)
    tracemalloc.start()
    t0 = time.perf_counter()
    system = build_system(spec, "bcp", "base", 3)
    director = EventDirector(system, spec)
    director.install()
    system.start()
    director.schedule()
    system.run(spec.duration_s)
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"wall_s": wall, "n_phones": float(n),
            "peak_kb": peak / 1024.0,
            "bytes_per_phone": peak / n}


def _rss_factory(backend: str, n_full: int):
    def factory(quick: bool) -> CaseFn:
        n = max(n_full // 8, 250) if quick else n_full

        def run() -> Dict[str, float]:
            return _rss_case(backend, n)

        return run

    return factory


#: The peak-RSS curve: fleet backend across a 16x population span, with
#: the object backend at the midpoint for contrast.  The sub-linear and
#: absolute-ceiling gates live in tests/perf/test_fleet_scaling.py.
for _n in (1_000, 4_000, 16_000):
    _register("fleet", f"rss/fleet-n{_n}")(_rss_factory("fleet", _n))
_register("fleet", "rss/object-n4000")(_rss_factory("object", 4_000))


_register("fleet", "scenario/fleet-battery-wave")(
    _scenario_case("fleet-battery-wave", "bcp", "ms-8", 3)
)


@_register("fleet", "scheduler/calendar-call_in")
def _calendar_call_in(quick: bool) -> CaseFn:
    """The call_in storm on the calendar-queue backend (the heap number
    is sim_kernel's ``call_in_storm``)."""
    n = 20_000 if quick else 100_000

    def run() -> Dict[str, float]:
        sim = Simulator(scheduler="calendar")
        hits = [0]

        def bump() -> None:
            hits[0] += 1

        for i in range(n):
            sim.call_in(0.001 * (i % 97), bump)
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        assert hits[0] == n
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


#: Suites whose cases are full runs (long enough to be stable); everything
#: else — the ``sweep_throughput`` executor cases included — is short
#: enough to repeat best-of, which is what keeps the CI ratio gate calm.
#: ``telemetry`` and ``verify`` are here because their overhead cases
#: repeat *internally* (best-of per arm) — the outer best-of would
#: re-pair the arms.
SINGLE_RUN_SUITES = ("scenarios", "telemetry", "verify")


# -- execution ----------------------------------------------------------------
def run_suite(suite: str, quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Run every case of ``suite``; returns case name -> metrics.

    Microbenchmark cases run :data:`MICRO_REPEATS` times and keep the
    fastest wall time; :data:`SINGLE_RUN_SUITES` cases run once.
    """
    if suite not in SUITES:
        raise KeyError(f"unknown perf suite {suite!r}; have {sorted(SUITES)}")
    results: Dict[str, Dict[str, float]] = {}
    if suite in SINGLE_RUN_SUITES:
        repeats = 1
    else:
        repeats = MICRO_REPEATS_QUICK if quick else MICRO_REPEATS
    for name, factory in SUITES[suite]:
        case = factory(quick)
        best: Dict[str, float] = {}
        for _ in range(repeats):
            metrics = case()
            if not best or metrics["wall_s"] < best["wall_s"]:
                best = metrics
        results[name] = best
    return results


def suite_names() -> List[str]:
    """All registered suite names, stable order."""
    return list(SUITES)
