"""Benchmark suite definitions.

Four microbenchmark suites exercise the layers the hot-path work targets
(simulation kernel, trace monitor, WiFi broadcast, checkpoint rounds);
the ``scenarios`` suite times full named-scenario cases end to end, which
is the number the ≥3x speedup acceptance criterion is measured on.

Each case returns a metrics dict with at least ``wall_s``; kernel-driven
cases add ``events``, ``events_per_s``, and (for scenario runs)
``sim_s`` / ``sim_s_per_wall_s`` — simulated seconds per wall second is
the simulator's "speed of light" number.

Microbenchmark cases repeat a few times and keep the best wall time (the
standard trick to strip scheduler noise); scenario cases run once — they
are long enough to be stable.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.sim.core import Simulator
from repro.sim.monitor import Trace
from repro.sim.rng import RngRegistry

#: suite name -> list of (case name, factory); the factory receives
#: ``quick`` and returns a zero-arg callable measuring one run.
CaseFn = Callable[[], Dict[str, float]]
SUITES: Dict[str, List[Tuple[str, Callable[[bool], CaseFn]]]] = {}

#: Repeats for microbenchmark cases (best-of); scenario cases run once.
#: Quick mode repeats more: its cases are milliseconds long, so best-of
#: needs more samples to shake scheduler noise out of the CI gate.
MICRO_REPEATS = 3
MICRO_REPEATS_QUICK = 5


def _register(suite: str, name: str):
    def deco(factory: Callable[[bool], CaseFn]):
        SUITES.setdefault(suite, []).append((name, factory))
        return factory
    return deco


def _events_per_s(events: int, wall: float) -> float:
    return events / wall if wall > 0 else 0.0


# -- sim kernel ---------------------------------------------------------------
@_register("sim_kernel", "timeout_churn")
def _timeout_churn(quick: bool) -> CaseFn:
    """Many processes ticking short timeouts: raw event-loop throughput."""
    n_procs, n_ticks = (20, 500) if quick else (50, 2000)

    def run() -> Dict[str, float]:
        sim = Simulator()

        def ticker(sim: Simulator, n: int):
            for _ in range(n):
                yield sim.timeout(0.01)

        for _ in range(n_procs):
            sim.process(ticker(sim, n_ticks))
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


@_register("sim_kernel", "call_in_storm")
def _call_in_storm(quick: bool) -> CaseFn:
    """Scheduled-callback delivery: the ``call_in`` fast path."""
    n = 20_000 if quick else 100_000

    def run() -> Dict[str, float]:
        sim = Simulator()
        hits = [0]

        def bump() -> None:
            hits[0] += 1

        for i in range(n):
            sim.call_in(0.001 * (i % 97), bump)
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        assert hits[0] == n
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


@_register("sim_kernel", "process_spawn")
def _process_spawn(quick: bool) -> CaseFn:
    """Short-lived process creation/teardown (source drivers, transfers)."""
    n = 5_000 if quick else 20_000

    def run() -> Dict[str, float]:
        sim = Simulator()

        def short(sim: Simulator):
            yield sim.timeout(0.001)

        def spawner(sim: Simulator):
            for _ in range(n):
                yield sim.process(short(sim))

        sim.process(spawner(sim))
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


# -- monitor ------------------------------------------------------------------
@_register("monitor", "record_and_select")
def _record_and_select(quick: bool) -> CaseFn:
    """Trace recording plus windowed metric queries (harness pattern)."""
    n_records, n_queries = (20_000, 200) if quick else (100_000, 1000)
    categories = ["sink_output", "checkpoint", "heartbeat", "recovery_finished"]

    def run() -> Dict[str, float]:
        trace = Trace()
        t0 = time.perf_counter()
        for i in range(n_records):
            trace.record(float(i), categories[i % len(categories)],
                         region="region0", latency=float(i % 37))
        total = 0
        for q in range(n_queries):
            since = float(q % 50) * (n_records / 100)
            total += sum(
                1 for _ in trace.select("sink_output", since=since,
                                        until=since + n_records / 10)
            )
            total += trace.count_of("recovery_finished")
        wall = time.perf_counter() - t0
        ops = n_records + 2 * n_queries
        return {"wall_s": wall, "events": ops,
                "events_per_s": _events_per_s(ops, wall), "checksum": total}

    return run


@_register("monitor", "counters")
def _counters(quick: bool) -> CaseFn:
    """Counter increments through cached handles vs. name lookups."""
    n = 50_000 if quick else 200_000

    def run() -> Dict[str, float]:
        trace = Trace()
        handle = trace.counter("net.wifi.bytes")
        t0 = time.perf_counter()
        for i in range(n):
            handle.add(1024.0)
            if i % 16 == 0:
                trace.count("ft.network_bytes", 64.0)
        wall = time.perf_counter() - t0
        return {"wall_s": wall, "events": n,
                "events_per_s": _events_per_s(n, wall)}

    return run


# -- wifi broadcast -----------------------------------------------------------
def _make_cell(n_members: int):
    from repro.net.wifi import WifiCell

    sim = Simulator()
    rng = RngRegistry(0)
    trace = Trace()
    cell = WifiCell(sim, rng, name="bench", trace=trace)
    for i in range(n_members):
        cell.join(f"m{i}", lambda msg: None)
    return sim, cell


@_register("wifi_broadcast", "broadcast_rounds")
def _broadcast_rounds(quick: bool) -> CaseFn:
    """Back-to-back UDP broadcast rounds over an 8-member cell."""
    n_rounds, n_blocks = (20, 128) if quick else (60, 512)

    def run() -> Dict[str, float]:
        sim, cell = _make_cell(8)
        indices = np.arange(n_blocks)

        def driver():
            for _ in range(n_rounds):
                yield from cell.udp_broadcast_round("m0", indices, 1024)

        sim.process(driver())
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


@_register("wifi_broadcast", "unicast_stream")
def _unicast_stream(quick: bool) -> CaseFn:
    """A stream of TCP-like unicasts (the per-tuple data path)."""
    n_msgs = 500 if quick else 2000

    def run() -> Dict[str, float]:
        from repro.net.packet import Message

        sim, cell = _make_cell(4)

        def driver():
            for i in range(n_msgs):
                msg = Message(src="m0", dst=f"m{1 + i % 3}", size=4096,
                              kind="tuple", payload=("tuple", "op", None))
                yield from cell.tcp_unicast(msg)

        sim.process(driver())
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


# -- checkpoint rounds --------------------------------------------------------
@_register("checkpoint", "broadcast_checkpoint")
def _broadcast_checkpoint(quick: bool) -> CaseFn:
    """Full multi-phase checkpoint broadcasts (UDP rounds + TCP tree)."""
    n_ckpts, size = (4, 128 * 1024) if quick else (10, 512 * 1024)

    def run() -> Dict[str, float]:
        from repro.checkpoint.broadcast import broadcast_checkpoint

        sim, cell = _make_cell(8)

        def driver():
            for _ in range(n_ckpts):
                yield from broadcast_checkpoint(sim, cell, "m0", size)

        sim.process(driver())
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        ev = sim.events_processed
        return {"wall_s": wall, "events": ev,
                "events_per_s": _events_per_s(ev, wall)}

    return run


# -- full scenarios -----------------------------------------------------------
_SCENARIO_CASES = (
    ("paper-fig8", "bcp", "ms-8", 3),
    ("paper-fig8", "signalguru", "ms-8", 3),
    ("failure-cascade", "bcp", "ms-8", 3),
    ("edgeml-baseline", "edgeml", "ms-8", 3),
)


def _scenario_case(scenario: str, app: str, scheme: str, seed: int):
    def factory(quick: bool) -> CaseFn:
        def run() -> Dict[str, float]:
            from repro.scenarios import EventDirector, get
            from repro.scenarios.runner import build_system

            spec = get(scenario)
            if quick:
                spec = spec.quick()
            system = build_system(spec, app, scheme, seed)
            director = EventDirector(system, spec)
            director.install()
            t0 = time.perf_counter()
            system.start()
            director.schedule()
            system.run(spec.duration_s)
            wall = time.perf_counter() - t0
            report = system.metrics(warmup_s=spec.warmup_s)
            ev = system.sim.events_processed
            return {
                "wall_s": wall,
                "sim_s": spec.duration_s,
                "sim_s_per_wall_s": spec.duration_s / wall if wall > 0 else 0.0,
                "events": ev,
                "events_per_s": _events_per_s(ev, wall),
                "output_tuples": sum(
                    rm.output_tuples for rm in report.per_region.values()
                ),
            }

        return run

    return factory


for _scenario, _app, _scheme, _seed in _SCENARIO_CASES:
    _register("scenarios", f"{_scenario}/{_app}/{_scheme}")(
        _scenario_case(_scenario, _app, _scheme, _seed)
    )


@_register("scenarios", "paper-fig8/full-sweep")
def _fig8_full_sweep(quick: bool) -> CaseFn:
    """The acceptance-criterion number: the whole 14-case Fig. 8 matrix,
    serially, exactly as ``scenario sweep paper-fig8 --jobs 1`` runs it."""

    def run() -> Dict[str, float]:
        from repro.scenarios import get, run_sweep

        spec = get("paper-fig8")
        if quick:
            spec = spec.quick()
        n_cases = len(spec.matrix)
        t0 = time.perf_counter()
        run_sweep(spec, jobs=1)
        wall = time.perf_counter() - t0
        total_sim = spec.duration_s * n_cases
        return {
            "wall_s": wall,
            "n_cases": n_cases,
            "sim_s": total_sim,
            "sim_s_per_wall_s": total_sim / wall if wall > 0 else 0.0,
        }

    return run


# -- execution ----------------------------------------------------------------
def run_suite(suite: str, quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Run every case of ``suite``; returns case name -> metrics.

    Microbenchmark cases run :data:`MICRO_REPEATS` times and keep the
    fastest wall time; ``scenarios`` cases run once.
    """
    if suite not in SUITES:
        raise KeyError(f"unknown perf suite {suite!r}; have {sorted(SUITES)}")
    results: Dict[str, Dict[str, float]] = {}
    if suite == "scenarios":
        repeats = 1
    else:
        repeats = MICRO_REPEATS_QUICK if quick else MICRO_REPEATS
    for name, factory in SUITES[suite]:
        case = factory(quick)
        best: Dict[str, float] = {}
        for _ in range(repeats):
            metrics = case()
            if not best or metrics["wall_s"] < best["wall_s"]:
                best = metrics
        results[name] = best
    return results


def suite_names() -> List[str]:
    """All registered suite names, stable order."""
    return list(SUITES)
