"""``BENCH_<suite>.json`` artifacts: schema, writing, loading.

An artifact records one suite's measurements *plus* the machine and
Python context they were taken in.  Comparisons across different
machines are flagged by :mod:`repro.perf.compare` rather than silently
trusted — wall-clock numbers only mean something against a baseline from
the same host.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from typing import Any, Dict

import numpy as np

#: Artifact filename prefix; ``BENCH_sim_kernel.json`` etc.
BENCH_PREFIX = "BENCH_"

#: Bumped whenever the result schema changes shape.
SCHEMA_VERSION = 1


def machine_meta() -> Dict[str, Any]:
    """Machine/python metadata embedded in every artifact."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "cpu_count": os.cpu_count(),
        "numpy": np.__version__,
        "executable": os.path.basename(sys.executable),
    }


def artifact_name(suite: str) -> str:
    """Filename for a suite's artifact."""
    return f"{BENCH_PREFIX}{suite}.json"


def make_artifact(
    suite: str, results: Dict[str, Dict[str, float]], quick: bool
) -> Dict[str, Any]:
    """Assemble the artifact dict for one suite run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "quick": quick,
        "meta": machine_meta(),
        "results": results,
    }


def write_artifact(out_dir: str, artifact: Dict[str, Any]) -> str:
    """Write one artifact as canonical JSON; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, artifact_name(artifact["suite"]))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, sort_keys=True, indent=2)
        fh.write("\n")
    return path


def load_artifacts(dir_path: str) -> Dict[str, Dict[str, Any]]:
    """Load every ``BENCH_*.json`` in ``dir_path``, keyed by suite name."""
    out: Dict[str, Dict[str, Any]] = {}
    if not os.path.isdir(dir_path):
        return out
    for name in sorted(os.listdir(dir_path)):
        if not (name.startswith(BENCH_PREFIX) and name.endswith(".json")):
            continue
        with open(os.path.join(dir_path, name), encoding="utf-8") as fh:
            artifact = json.load(fh)
        out[artifact["suite"]] = artifact
    return out
