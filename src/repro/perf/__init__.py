"""Continuous performance benchmarking: ``python -m repro perf run|compare``.

The subsystem has three layers:

* :mod:`repro.perf.suites` — the benchmark definitions: microbenchmarks
  over the simulation kernel, the trace monitor, WiFi broadcast, and
  checkpoint rounds, plus full named-scenario runs.  Every case reports
  wall seconds and, where meaningful, kernel events/second and simulated
  seconds per wall second.
* :mod:`repro.perf.artifacts` — ``BENCH_<suite>.json`` artifacts with
  machine/python metadata, so numbers from different hosts are never
  compared silently.
* :mod:`repro.perf.compare` — baseline comparison with a regression
  threshold and meaningful exit codes (0 ok, 1 regression, 2 usage
  error), used by the ``perf-smoke`` CI job.

The committed baseline lives in ``benchmarks/baselines/``; fresh runs
default to ``benchmarks/results/``.
"""

from repro.perf.artifacts import (  # noqa: F401
    BENCH_PREFIX,
    artifact_name,
    load_artifacts,
    write_artifact,
)
from repro.perf.compare import compare_artifacts  # noqa: F401
from repro.perf.suites import SUITES, run_suite  # noqa: F401
