"""``python -m repro perf ...`` command implementations.

The argument parsing lives in :mod:`repro.cli`; this module holds the
handlers so the perf machinery can also be driven programmatically.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

from repro.perf.artifacts import load_artifacts, make_artifact, write_artifact
from repro.perf.compare import compare_artifacts, format_report
from repro.perf.suites import run_suite, suite_names

#: Default directories, relative to the repo root.
DEFAULT_RESULTS_DIR = "benchmarks/results"
DEFAULT_BASELINE_DIR = "benchmarks/baselines"


def cmd_perf_run(
    out_dir: str = DEFAULT_RESULTS_DIR,
    suites: Optional[List[str]] = None,
    quick: bool = False,
    stream=None,
) -> int:
    """Run the selected suites and write one artifact per suite."""
    stream = stream or sys.stdout
    selected = suites or suite_names()
    unknown = [s for s in selected if s not in suite_names()]
    if unknown:
        print(f"error: unknown suite(s) {unknown}; have {suite_names()}",
              file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    for suite in selected:
        t_suite = time.perf_counter()
        results = run_suite(suite, quick=quick)
        path = write_artifact(out_dir, make_artifact(suite, results, quick))
        wall = time.perf_counter() - t_suite
        print(f"[{suite}] {len(results)} case(s) in {wall:.1f}s -> {path}",
              file=stream)
        for case, metrics in results.items():
            extras = []
            if "events_per_s" in metrics:
                extras.append(f"{metrics['events_per_s']:,.0f} ev/s")
            if "sim_s_per_wall_s" in metrics:
                extras.append(f"{metrics['sim_s_per_wall_s']:,.0f} sim-s/s")
            suffix = f" ({', '.join(extras)})" if extras else ""
            print(f"    {case:<40} {metrics['wall_s']:.3f}s{suffix}",
                  file=stream)
    print(f"total: {time.perf_counter() - t0:.1f}s", file=stream)
    return 0


def cmd_perf_compare(
    baseline_dir: str = DEFAULT_BASELINE_DIR,
    current_dir: str = DEFAULT_RESULTS_DIR,
    threshold: float = 0.25,
    suites: Optional[List[str]] = None,
    stream=None,
) -> int:
    """Compare ``current_dir`` against ``baseline_dir``; exit code 0/1/2."""
    stream = stream or sys.stdout
    if threshold < 0:
        print("error: threshold must be >= 0", file=sys.stderr)
        return 2
    report = compare_artifacts(
        load_artifacts(baseline_dir),
        load_artifacts(current_dir),
        threshold=threshold,
        suites=suites,
    )
    print(format_report(report), file=stream)
    return report.exit_code
