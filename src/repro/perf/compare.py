"""Baseline comparison with regression thresholds.

``python -m repro perf compare`` loads two directories of
``BENCH_*.json`` artifacts (a committed baseline and a fresh run) and
compares wall times case by case.  A case regresses when

    current_wall > baseline_wall * (1 + threshold)

Exit codes (wired through the CLI):

* 0 — no regression
* 1 — at least one regression above the threshold
* 2 — usage error (no artifacts, quick/full mix-up)

Quick-vs-full comparisons are refused outright (exit 2): their
workloads differ, so the ratio is meaningless.  Cross-host comparisons
(different machine/platform metadata) still run but carry a loud
warning — the committed-baseline CI gate depends on comparing, and the
warning tells the reader how much to trust the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class CaseComparison:
    """One benchmark case, baseline vs. current."""

    suite: str
    case: str
    baseline_wall_s: float
    current_wall_s: float

    @property
    def ratio(self) -> float:
        """current / baseline; > 1 means slower."""
        if self.baseline_wall_s <= 0:
            return float("inf") if self.current_wall_s > 0 else 1.0
        return self.current_wall_s / self.baseline_wall_s

    def regressed(self, threshold: float) -> bool:
        """Whether the slowdown exceeds ``threshold`` (0.25 = +25%)."""
        return self.ratio > 1.0 + threshold


@dataclass
class ComparisonReport:
    """Every compared case plus bookkeeping for the exit code."""

    threshold: float
    cases: List[CaseComparison] = field(default_factory=list)
    #: (suite, case) present on one side only.
    missing: List[str] = field(default_factory=list)
    #: Human-readable reasons the comparison is unsound (exit code 2).
    errors: List[str] = field(default_factory=list)
    #: Non-fatal notes (e.g. different machine metadata).
    warnings: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CaseComparison]:
        """Cases slower than the threshold allows."""
        return [c for c in self.cases if c.regressed(self.threshold)]

    @property
    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.regressions else 0


#: Metadata keys whose mismatch means the hosts differ — wall times are
#: then only indicative.  "platform" carries the OS/kernel string, which
#: is what actually distinguishes a laptop from a CI runner when both
#: report machine=x86_64.
_STRICT_META = ("machine", "platform", "processor", "implementation")


def compare_artifacts(
    baseline: Dict[str, Dict[str, Any]],
    current: Dict[str, Dict[str, Any]],
    threshold: float = 0.25,
    suites: Optional[List[str]] = None,
) -> ComparisonReport:
    """Compare two artifact sets (as returned by ``load_artifacts``)."""
    report = ComparisonReport(threshold=threshold)
    if not baseline:
        report.errors.append("no baseline artifacts found")
    if not current:
        report.errors.append("no current artifacts found")
    if report.errors:
        return report

    names = [s for s in current if s in baseline]
    if suites is not None:
        names = [s for s in names if s in suites]
    # A suite present on one side only must be visible: a deleted or
    # renamed suite would otherwise silently drop out of the gate.
    for s in baseline:
        if s not in current and (suites is None or s in suites):
            report.missing.append(f"{s} (whole suite, current)")
    for s in current:
        if s not in baseline and (suites is None or s in suites):
            report.missing.append(f"{s} (whole suite, baseline)")
    if not names:
        report.errors.append("baseline and current share no suites")
        return report

    for suite in names:
        base_art, cur_art = baseline[suite], current[suite]
        if bool(base_art.get("quick")) != bool(cur_art.get("quick")):
            report.errors.append(
                f"{suite}: quick/full mismatch (baseline quick="
                f"{base_art.get('quick')}, current quick={cur_art.get('quick')})"
            )
            continue
        for key in _STRICT_META:
            b = base_art.get("meta", {}).get(key)
            c = cur_art.get("meta", {}).get(key)
            if b != c:
                report.warnings.append(
                    f"{suite}: baseline {key}={b!r} vs current {key}={c!r} — "
                    "wall times across hosts are only indicative"
                )
        base_results = base_art.get("results", {})
        cur_results = cur_art.get("results", {})
        for case in base_results:
            if case not in cur_results:
                report.missing.append(f"{suite}/{case} (current)")
                continue
            report.cases.append(CaseComparison(
                suite=suite,
                case=case,
                baseline_wall_s=float(base_results[case]["wall_s"]),
                current_wall_s=float(cur_results[case]["wall_s"]),
            ))
        for case in cur_results:
            if case not in base_results:
                report.missing.append(f"{suite}/{case} (baseline)")

    if not report.cases and not report.errors:
        report.errors.append("no overlapping benchmark cases to compare")
    return report


def format_report(report: ComparisonReport) -> str:
    """Plain-text comparison table."""
    lines: List[str] = []
    header = f"{'suite':<16} {'case':<34} {'baseline':>10} {'current':>10} {'ratio':>7}  status"
    lines.append(header)
    lines.append("-" * len(header))
    for c in sorted(report.cases, key=lambda c: (c.suite, c.case)):
        if c.regressed(report.threshold):
            status = "REGRESSION"
        elif c.ratio < 1.0 - report.threshold:
            status = "faster"
        else:
            status = "ok"
        lines.append(
            f"{c.suite:<16} {c.case:<34} {c.baseline_wall_s:>9.3f}s "
            f"{c.current_wall_s:>9.3f}s {c.ratio:>6.2f}x  {status}"
        )
    for name in report.missing:
        lines.append(f"missing: {name}")
    for warning in report.warnings:
        lines.append(f"warning: {warning}")
    for error in report.errors:
        lines.append(f"error: {error}")
    n_reg = len(report.regressions)
    lines.append(
        f"{len(report.cases)} cases compared, {n_reg} regression(s) "
        f"at +{report.threshold * 100:.0f}% threshold"
    )
    return "\n".join(lines)
