"""Engineered failures for exercising the fabric's recovery paths.

Two test-only schemes ride the runtime scheme-extension registry
(:func:`repro.scenarios.runner.register_scheme`), mirroring
:mod:`repro.verify.testing`:

* ``chaos-kill`` — :class:`WorkerKillingScheme` SIGKILLs the *process
  executing the case* at :meth:`attach` time.  With ``jobs == 1`` that
  is the fabric worker itself (connection reset → the coordinator
  charges a kill); in a local pool it is a pool child (the executor's
  pid watchdog notices).  The kill budget lives in the filesystem so it
  spans processes and sweeps: ``REPRO_KILL_DIR`` points at a marker
  directory and ``REPRO_KILL_LIMIT`` caps how many kills fire (``-1`` =
  unlimited — the recipe for a quarantine, since every retry dies too).
  Budget exhausted → the scheme behaves exactly like ``base``.

* ``chaos-error`` — :class:`ErroringScheme` raises a plain exception at
  attach, exercising the structured per-case error capture/retry path
  without hurting any process.

The schemes are armed in worker processes only when
``REPRO_ENABLE_TEST_SCHEMES`` is set in the environment — the executor
pool initializer and the fabric worker both call
:func:`ensure_registered` under that flag, so a spec whose matrix names
``chaos-kill`` validates on every side of the fabric.  Importing this
module alone has no side effects (tests import its constants freely);
in-process tests use the :func:`chaos_schemes` context manager.
"""

from __future__ import annotations

import os
import signal
from contextlib import contextmanager
from typing import Iterator

from repro.baselines.base import NoFaultTolerance
from repro.scenarios.runner import register_scheme, unregister_scheme
from repro.util.simlog import get_logger

log = get_logger()

#: Scheme labels the fixtures register under.
CHAOS_KILL = "chaos-kill"
CHAOS_ERROR = "chaos-error"

#: Environment knobs for the kill scheme.
KILL_DIR_ENV = "REPRO_KILL_DIR"
KILL_LIMIT_ENV = "REPRO_KILL_LIMIT"
ENABLE_ENV = "REPRO_ENABLE_TEST_SCHEMES"


def _claim_kill() -> bool:
    """Atomically claim one unit of the cross-process kill budget.

    Marker files named ``kill-<n>`` under ``REPRO_KILL_DIR`` are created
    with ``O_CREAT | O_EXCL`` — each name can be claimed exactly once
    even when several processes race, so ``REPRO_KILL_LIMIT=1`` kills
    exactly one worker no matter how many are running.
    """
    kill_dir = os.environ.get(KILL_DIR_ENV)
    if not kill_dir:
        return False  # disarmed: no budget directory, no kills
    limit = int(os.environ.get(KILL_LIMIT_ENV, "1"))
    os.makedirs(kill_dir, exist_ok=True)
    n = 0
    while limit < 0 or n < limit:
        path = os.path.join(kill_dir, f"kill-{n}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            n += 1
            continue
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(str(os.getpid()))
        return True
    return False


class WorkerKillingScheme(NoFaultTolerance):
    """``base`` that SIGKILLs its executing process on attach (test-only)."""

    name = CHAOS_KILL

    def attach(self, region) -> None:
        if _claim_kill():
            log.warning(
                "chaos-kill: SIGKILLing pid %d (budget claimed)", os.getpid())
            os.kill(os.getpid(), signal.SIGKILL)
        super().attach(region)


class ErroringScheme(NoFaultTolerance):
    """``base`` that raises on attach (test-only error-capture probe)."""

    name = CHAOS_ERROR

    def attach(self, region) -> None:
        raise RuntimeError("chaos-error: injected scheme failure")


def ensure_registered() -> None:
    """Idempotently register both chaos schemes."""
    for label, factory in ((CHAOS_KILL, WorkerKillingScheme),
                           (CHAOS_ERROR, ErroringScheme)):
        try:
            register_scheme(label, factory)
        except ValueError:
            pass  # already registered (re-import, long-lived process)


@contextmanager
def chaos_schemes() -> Iterator[None]:
    """Register the chaos schemes for the duration of a test."""
    ensure_registered()
    try:
        yield
    finally:
        unregister_scheme(CHAOS_KILL)
        unregister_scheme(CHAOS_ERROR)
