"""Multi-host sweep fabric: coordinator/worker control plane.

A sweep's case matrix (spec digest × app × scheme × seed — already
content-addressed by the executor) is sharded over TCP workers by a
:class:`FabricCoordinator`; :class:`FabricWorker` processes lease
cases, execute them through the standard executor code path, and
stream payloads back.  Worker death is survived by lease re-queuing
with bounded retries; a case that keeps killing its workers is
quarantined rather than allowed to hang the sweep.  Merged artifacts
are byte-identical to serial runs — :func:`run_chaos` proves it by
SIGKILLing live workers mid-sweep.

Stdlib only: no dependency beyond what the simulator already needs.
"""

from repro.fabric.coordinator import (
    FabricCoordinator,
    FabricError,
    run_fabric_sweep,
)
from repro.fabric.ledger import CaseLedger
from repro.fabric.protocol import (
    FrameError,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.fabric.worker import FabricWorker

__all__ = [
    "CaseLedger",
    "FabricCoordinator",
    "FabricError",
    "FabricWorker",
    "FrameError",
    "format_address",
    "parse_address",
    "recv_frame",
    "run_chaos",
    "run_fabric_sweep",
    "send_frame",
]


def run_chaos(*args, **kwargs):
    """Lazy re-export of :func:`repro.fabric.chaos.run_chaos` (keeps
    ``subprocess`` &co out of the import path of plain fabric use)."""
    from repro.fabric.chaos import run_chaos as _run_chaos
    return _run_chaos(*args, **kwargs)
