"""The fabric coordinator: shard a sweep's case matrix over TCP workers.

The coordinator owns one sweep end to end.  It binds a listening socket,
preloads the resume cache exactly like :func:`repro.scenarios.run_sweep`,
enters the un-cached cases into a :class:`~repro.fabric.ledger.CaseLedger`,
and then plays two roles at once:

* **Control plane** (daemon threads): one accept loop plus one handler
  thread per worker connection.  Workers fetch leases, stream back
  result payloads, and heartbeat; a connection that goes silent past
  the heartbeat timeout, drops, or resets releases every lease it held
  — charging a *kill* against each case (two kills = quarantine).

* **Merge loop** (the calling thread): a cursor walks the full matrix
  order and blocks until each index resolves — from the cache, from a
  worker result, or terminally (quarantined/errored).  Rows stream
  into :class:`~repro.scenarios.executor.StreamingSweepWriter` and the
  :class:`~repro.scenarios.executor.CaseCache` in matrix order, which
  is the whole determinism story: serial, ``--jobs N``, and distributed
  sweeps emit byte-identical artifacts because every one of them merges
  through the same ordered writer.

Failure semantics at a glance: connection drop / missed heartbeat →
re-queue with exponential backoff, kill charged; lease deadline passed
with the connection still up → re-queue, no kill, bounded by the
per-case retry budget; case raised inside the executor → retried once
on another lease, then reported in the run report's ``errors``; case
killed its worker twice → ``quarantined``.  Quarantined/errored cases
never hang the merge — the sweep finishes every other case, reports
them in the envelope, and the CLI exits non-zero.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apps.registry import get_app
from repro.fabric.ledger import DONE, QUARANTINED, TERMINAL, CaseLedger
from repro.fabric.protocol import FrameError, recv_frame, send_frame
from repro.results.io import COMPACT_THRESHOLD
from repro.scenarios import executor
from repro.scenarios.executor import (
    CaseCache,
    StreamingSweepWriter,
    _write_timeline_file,
    spec_digest,
)
from repro.scenarios.runner import scheme_factory
from repro.scenarios.spec import ScenarioSpec
from repro.util.simlog import get_logger

log = get_logger()

#: on_progress callback kinds.
PROGRESS_KINDS = ("cached", "row", "quarantined", "errored")


class FabricError(RuntimeError):
    """The fabric cannot make progress (e.g. no worker activity for
    longer than ``idle_timeout_s``)."""


class FabricCoordinator:
    """One sweep's coordinator.  Construct, then call :meth:`run` once.

    The listener binds in the constructor so callers (tests, the chaos
    harness) can pass port 0 and read the assigned ``.port`` before any
    worker starts.  ``on_progress(kind, index, app_key, scheme, seed)``
    is invoked from the merge thread for every resolved case.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        bind: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        verify: bool = False,
        resume_dir: Optional[str] = None,
        max_cases: Optional[int] = None,
        lease_timeout_s: float = 120.0,
        heartbeat_timeout_s: float = 15.0,
        retry_limit: int = 5,
        max_kills: int = 2,
        error_retry_limit: int = 2,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        idle_timeout_s: Optional[float] = None,
        drain_grace_s: float = 2.0,
        on_progress: Optional[Callable[[str, int, str, str, int], None]] = None,
    ) -> None:
        if max_cases is not None and max_cases < 1:
            raise ValueError("max_cases must be >= 1")
        self._spec = spec
        self._verify = verify
        self._resume_dir = resume_dir
        self._max_cases = max_cases
        self._heartbeat_timeout_s = float(heartbeat_timeout_s)
        self._idle_timeout_s = idle_timeout_s
        self._drain_grace_s = float(drain_grace_s)
        self._on_progress = on_progress
        self._ledger_opts = dict(
            lease_timeout_s=lease_timeout_s,
            retry_limit=retry_limit,
            max_kills=max_kills,
            error_retry_limit=error_retry_limit,
            backoff_base_s=backoff_base_s,
            backoff_cap_s=backoff_cap_s,
        )

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._ledger: Optional[CaseLedger] = None
        self._digest = ""
        self._conn_seq = 0
        self._draining = False
        self._closing = False
        self._last_progress = time.monotonic()
        self._conns: List[socket.socket] = []
        self._accept_thread: Optional[threading.Thread] = None

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(bind)
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]

    # -- control plane ---------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                if self._closing:
                    return
            try:
                sock, peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            with self._lock:
                if self._closing:
                    sock.close()
                    return
                self._conns.append(sock)
            thread = threading.Thread(
                target=self._serve_connection, args=(sock, peer), daemon=True
            )
            thread.start()

    def _serve_connection(self, sock: socket.socket, peer: Any) -> None:
        owner: Optional[str] = None
        clean_exit = False
        try:
            sock.settimeout(self._heartbeat_timeout_s)
            hello = recv_frame(sock)
            if hello is None or hello.get("type") != "hello":
                return
            with self._lock:
                self._conn_seq += 1
                # The connection sequence makes the owner token unique
                # per *connection*: when a worker reconnects, its stale
                # connection's eventual timeout must not release the
                # leases the fresh connection now holds.
                owner = f"{hello.get('worker', 'anon')}#{self._conn_seq}"
                self._last_progress = time.monotonic()
                digest = self._digest
            send_frame(sock, {
                "type": "welcome",
                "spec": self._spec.to_dict(),
                "digest": digest,
                "verify": self._verify,
            })
            log.info("fabric: worker %s connected from %s", owner, peer)
            while True:
                message = recv_frame(sock)
                if message is None:
                    return
                mtype = message.get("type")
                if mtype == "fetch":
                    reply = self._handle_fetch(owner)
                elif mtype == "result":
                    self._handle_result(message, owner)
                    reply = {"type": "ack"}
                elif mtype == "error":
                    self._handle_error(message, owner)
                    reply = {"type": "ack"}
                elif mtype == "heartbeat":
                    reply = {"type": "ack"}
                elif mtype == "goodbye":
                    send_frame(sock, {"type": "ack"})
                    clean_exit = True
                    return
                else:
                    raise FrameError(f"unknown frame type {mtype!r}")
                send_frame(sock, reply)
        except socket.timeout:
            log.warning(
                "fabric: worker %s missed its heartbeat (> %.1fs); "
                "re-queuing its leases", owner, self._heartbeat_timeout_s)
        except (FrameError, OSError) as exc:
            with self._lock:
                closing = self._closing
            if owner is not None and not closing:
                log.warning(
                    "fabric: worker %s connection dropped (%s); "
                    "re-queuing its leases", owner, exc)
        finally:
            try:
                sock.close()
            except OSError:
                pass
            with self._lock:
                if sock in self._conns:
                    self._conns.remove(sock)
                if owner is not None and self._ledger is not None:
                    now = time.monotonic()
                    if clean_exit:
                        touched = self._ledger.requeue_owner(owner, now)
                    else:
                        touched = self._ledger.release_owner(owner, now)
                    if touched:
                        log.warning(
                            "fabric: re-queued/quarantined case indices %s "
                            "after losing worker %s", touched, owner)
                self._cond.notify_all()

    def _handle_fetch(self, owner: str) -> Dict[str, Any]:
        now = time.monotonic()
        with self._lock:
            ledger = self._ledger
            assert ledger is not None
            if self._draining or ledger.drained():
                return {"type": "shutdown"}
            ledger.expire(now)
            entry = ledger.lease(owner, now)
            if entry is None:
                return {"type": "wait", "delay": ledger.wait_hint(now)}
            return {
                "type": "lease",
                "index": entry.index,
                "app": entry.app.to_jsonable(),
                "scheme": entry.scheme,
                "seed": entry.seed,
            }

    def _handle_result(self, message: Dict[str, Any], owner: str) -> None:
        index = int(message["index"])
        with self._lock:
            ledger = self._ledger
            assert ledger is not None
            if ledger.complete(index, message.get("payload")):
                self._last_progress = time.monotonic()
                self._cond.notify_all()

    def _handle_error(self, message: Dict[str, Any], owner: str) -> None:
        index = int(message["index"])
        error = message.get("error") or {}
        with self._lock:
            ledger = self._ledger
            assert ledger is not None
            status = ledger.record_error(index, error, time.monotonic())
            self._last_progress = time.monotonic()
            self._cond.notify_all()
        log.warning(
            "fabric: case %d raised on worker %s (%s) -> %s",
            index, owner, error.get("type", "?"), status)

    # -- merge loop ------------------------------------------------------

    def _await_terminal(self, index: int):
        """Block until ``index`` reaches a terminal ledger state,
        expiring stale leases and policing the idle timeout meanwhile."""
        with self._lock:
            ledger = self._ledger
            assert ledger is not None
            while True:
                entry = ledger.case(index)
                if entry.status in TERMINAL:
                    return entry
                now = time.monotonic()
                expired = ledger.expire(now)
                if expired:
                    log.warning(
                        "fabric: lease deadline passed for case indices %s; "
                        "re-queued", expired)
                    self._last_progress = now
                    continue
                if (self._idle_timeout_s is not None
                        and now - self._last_progress > self._idle_timeout_s):
                    raise FabricError(
                        f"fabric made no progress for {self._idle_timeout_s:.0f}s "
                        f"waiting on case {index} (no live workers?)"
                    )
                self._cond.wait(0.2)

    def _report(self, kind: str, index: int, app_key: str, scheme: str,
                seed: int) -> None:
        if self._on_progress is not None:
            self._on_progress(kind, index, app_key, scheme, seed)

    def run(
        self,
        out_path: Optional[str] = None,
        compact: Optional[bool] = None,
        timelines_dir: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Serve the sweep and return a ``run_sweep``-shaped envelope.

        The envelope matches :func:`repro.scenarios.run_sweep` exactly
        for a clean run; ``"quarantined"`` / ``"errors"`` lists appear
        (in the returned dict only, never on disk) when cases were lost
        to their failure budgets.
        """
        spec = self._spec
        telemetry_on = spec.telemetry is not None
        if timelines_dir is not None and not telemetry_on:
            raise ValueError(
                "timelines_dir requires spec.telemetry (the scenario has no "
                "QoS monitor to produce timelines)"
            )
        for app in spec.matrix.apps:
            get_app(app.name).make_params(app.params)
        for scheme in spec.matrix.schemes:
            scheme_factory(scheme, spec.checkpoint_period_s)
        cases = list(spec.matrix.cases())
        if self._max_cases is not None:
            cases = cases[: self._max_cases]

        digest = spec_digest(spec)
        cache = CaseCache(self._resume_dir) if self._resume_dir else None
        cached: Dict[int, Dict[str, Any]] = {}
        cached_timelines: Dict[int, Dict[str, Any]] = {}
        if cache is not None:
            for i, (app, scheme, seed) in enumerate(cases):
                row = cache.get(digest, app.key, scheme, seed)
                if row is None:
                    continue
                if telemetry_on:
                    timeline = cache.get_timeline(digest, app.key, scheme, seed)
                    if timeline is None:
                        continue
                    cached_timelines[i] = timeline
                cached[i] = row
            executor.stats["cache_hits"] += len(cached)
            executor.stats["cache_misses"] += len(cases) - len(cached)
        missing = [
            (i, app, scheme, seed)
            for i, (app, scheme, seed) in enumerate(cases)
            if i not in cached
        ]

        if compact is None:
            compact = len(cases) >= COMPACT_THRESHOLD
        writer = StreamingSweepWriter(out_path, compact) if out_path else None

        with self._lock:
            self._digest = digest
            self._ledger = CaseLedger(missing, **self._ledger_opts)
            self._last_progress = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        log.info(
            "fabric: coordinating %d case(s) (%d cached) on %s:%d",
            len(cases), len(cached), self.host, self.port)

        rows: List[Dict[str, Any]] = []
        violations: List[Dict[str, Any]] = []
        try:
            for i, (app, scheme, seed) in enumerate(cases):
                timeline: Optional[Dict[str, Any]] = None
                if i in cached:
                    row = cached[i]
                    timeline = cached_timelines.get(i)
                    kind = "cached"
                else:
                    entry = self._await_terminal(i)
                    if entry.status != DONE:
                        kind = ("quarantined" if entry.status == QUARANTINED
                                else "errored")
                        log.error(
                            "fabric: case %s/%s/seed=%d %s (%s)",
                            app.key, scheme, seed, kind, entry.reason)
                        self._report(kind, i, app.key, scheme, seed)
                        continue
                    payload = entry.payload
                    if telemetry_on or self._verify:
                        row, timeline = payload["row"], payload.get("timeline")
                        for v in payload.get("violations", ()):
                            violations.append(
                                {"app": app.key, "scheme": scheme,
                                 "seed": seed, **v}
                            )
                    else:
                        row = payload
                    if cache is not None:
                        cache.put(digest, app.key, scheme, seed, row)
                        if telemetry_on:
                            cache.put_timeline(
                                digest, app.key, scheme, seed, timeline)
                    kind = "row"
                if timeline is not None and timelines_dir is not None:
                    _write_timeline_file(
                        timelines_dir, app.key, scheme, seed, timeline)
                rows.append(row)
                if writer is not None:
                    writer.write_row(row)
                self._report(kind, i, app.key, scheme, seed)
            if writer is not None:
                writer.finish(spec.name, spec.to_dict(), len(rows))
        except BaseException:
            if writer is not None:
                writer.abort()
            raise
        finally:
            self._shutdown()

        envelope: Dict[str, Any] = {
            "scenario": spec.name,
            "spec": spec.to_dict(),
            "n_cases": len(rows),
            "cases": rows,
        }
        if self._verify:
            envelope["violations"] = violations
        with self._lock:
            assert self._ledger is not None
            quarantined = self._ledger.quarantined_records()
            errors = self._ledger.error_records()
        # Like "violations": these keys live only in the returned
        # envelope — the streamed artifact's byte layout never changes.
        if quarantined:
            envelope["quarantined"] = quarantined
        if errors:
            envelope["errors"] = errors
        return envelope

    # -- teardown --------------------------------------------------------

    def _shutdown(self) -> None:
        """Drain politely, then close everything (idempotent)."""
        with self._lock:
            already = self._closing
            self._draining = True
            conns_open = bool(self._conns)
        if already:
            return
        if conns_open:
            # Give connected workers one grace window to fetch their
            # shutdown order and say goodbye before we cut the cord.
            deadline = time.monotonic() + self._drain_grace_s
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._conns:
                        break
                time.sleep(0.05)
        with self._lock:
            self._closing = True
            leftovers = list(self._conns)
            self._conns.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        for sock in leftovers:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)


def run_fabric_sweep(
    spec: ScenarioSpec,
    bind: Tuple[str, int],
    *,
    out_path: Optional[str] = None,
    compact: Optional[bool] = None,
    timelines_dir: Optional[str] = None,
    **options: Any,
) -> Dict[str, Any]:
    """One-shot convenience: construct a coordinator and run the sweep."""
    coordinator = FabricCoordinator(spec, bind, **options)
    return coordinator.run(
        out_path=out_path, compact=compact, timelines_dir=timelines_dir)
