"""Lease ledger: the coordinator's case state machine.

Pure bookkeeping — no sockets, no clock, no locks.  Every method takes
an explicit ``now`` so the coordinator (and the tests) fully control
time, and the caller is responsible for serializing access (the
coordinator holds one lock around every call).

Case lifecycle::

    QUEUED --lease()--> LEASED --complete()--> DONE
      ^                   |
      |   release_owner() / expire()          (requeue w/ backoff)
      +-------------------+
                          |
                          +--> QUARANTINED  (killed its worker twice,
                          |                  or retry budget exhausted)
                          +--> ERRORED      (case raised on 2 workers)

``release_owner`` is the *violent* path — the worker's connection died
or its heartbeat lapsed, so every lease it held counts a **kill**
against the case.  ``expire`` is the *slow* path — the lease deadline
passed while the connection looked healthy (worker wedged on one case);
it requeues without blaming the case, but the per-case attempt budget
still bounds total retries so a poison case cannot loop forever.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

QUEUED = "queued"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"
ERRORED = "errored"

#: States from which a case can never run again.
TERMINAL = frozenset({DONE, QUARANTINED, ERRORED})


class _Case:
    __slots__ = (
        "index", "app", "scheme", "seed", "status", "attempts", "kills",
        "error_attempts", "owner", "deadline", "not_before", "payload",
        "reason", "error",
    )

    def __init__(self, index: int, app: Any, scheme: str, seed: int) -> None:
        self.index = index
        self.app = app
        self.scheme = scheme
        self.seed = seed
        self.status = QUEUED
        self.attempts = 0          # times leased
        self.kills = 0             # times its worker died while leased
        self.error_attempts = 0    # times it raised inside the executor
        self.owner: Optional[str] = None
        self.deadline = 0.0
        self.not_before = 0.0      # backoff gate for re-leasing
        self.payload: Any = None
        self.reason: Optional[str] = None
        self.error: Optional[Dict[str, Any]] = None

    def _requeue(self, not_before: float) -> None:
        self.status = QUEUED
        self.owner = None
        self.deadline = 0.0
        self.not_before = not_before


class CaseLedger:
    """Tracks every case of one sweep from QUEUED to a terminal state.

    ``cases`` is a sequence of ``(index, app, scheme, seed)`` tuples —
    ``index`` is the case's position in the *full* matrix order, which
    is what the coordinator's merge cursor walks; cache-satisfied cases
    are simply never entered into the ledger.
    """

    def __init__(
        self,
        cases: Sequence[Tuple[int, Any, str, int]],
        *,
        lease_timeout_s: float = 120.0,
        retry_limit: int = 5,
        max_kills: int = 2,
        error_retry_limit: int = 2,
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if retry_limit < 1 or max_kills < 1 or error_retry_limit < 1:
            raise ValueError("retry/kill budgets must be at least 1")
        self.lease_timeout_s = float(lease_timeout_s)
        self.retry_limit = int(retry_limit)
        self.max_kills = int(max_kills)
        self.error_retry_limit = int(error_retry_limit)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self._cases: Dict[int, _Case] = {}
        for index, app, scheme, seed in cases:
            if index in self._cases:
                raise ValueError(f"duplicate case index {index}")
            self._cases[index] = _Case(index, app, scheme, seed)
        # Lease order is always lowest-index-first: it keeps the merge
        # cursor's stall window small and makes scheduling reproducible.
        self._order = sorted(self._cases)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cases)

    def case(self, index: int) -> _Case:
        return self._cases[index]

    def status(self, index: int) -> Optional[str]:
        entry = self._cases.get(index)
        return None if entry is None else entry.status

    def drained(self) -> bool:
        """True when every case is terminal — nothing left to lease."""
        return all(c.status in TERMINAL for c in self._cases.values())

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for entry in self._cases.values():
            out[entry.status] = out.get(entry.status, 0) + 1
        return out

    # -- transitions -----------------------------------------------------

    def backoff_s(self, attempts: int) -> float:
        """Exponential backoff before re-leasing: base * 2^(attempts-1)."""
        return min(self.backoff_cap_s,
                   self.backoff_base_s * (2.0 ** max(0, attempts - 1)))

    def lease(self, owner: str, now: float) -> Optional[_Case]:
        """Lease the lowest-index QUEUED case whose backoff has elapsed."""
        for index in self._order:
            entry = self._cases[index]
            if entry.status != QUEUED:
                continue
            if entry.not_before > now:
                continue
            entry.status = LEASED
            entry.owner = owner
            entry.attempts += 1
            entry.deadline = now + self.lease_timeout_s
            return entry
        return None

    def complete(self, index: int, payload: Any) -> bool:
        """Record a finished case.  Idempotent, first result wins.

        Duplicate/stale results (a slow worker finishing a case that
        was already re-run elsewhere) are harmless because case
        execution is deterministic — the payloads are identical — so
        they are silently ignored, as are indices the ledger never
        owned (cache hits).
        """
        entry = self._cases.get(index)
        if entry is None or entry.status in TERMINAL:
            return False
        entry.status = DONE
        entry.payload = payload
        entry.owner = None
        return True

    def record_error(self, index: int, error: Dict[str, Any],
                     now: float) -> str:
        """The case raised inside the executor (worker itself is fine).

        Retried on another lease until ``error_retry_limit`` distinct
        failures, then marked ERRORED.  Returns the resulting status.
        """
        entry = self._cases.get(index)
        if entry is None or entry.status in TERMINAL:
            return DONE if entry is None else entry.status
        entry.error_attempts += 1
        entry.error = error
        if entry.error_attempts >= self.error_retry_limit:
            entry.status = ERRORED
            entry.owner = None
            entry.reason = (
                f"raised on {entry.error_attempts} separate attempts"
            )
        else:
            entry._requeue(now + self.backoff_s(entry.attempts))
        return entry.status

    def release_owner(self, owner: str, now: float) -> List[int]:
        """The owner's connection died: every lease it held counts a
        kill.  Returns the indices that changed state."""
        touched: List[int] = []
        for entry in self._cases.values():
            if entry.status != LEASED or entry.owner != owner:
                continue
            entry.kills += 1
            if entry.kills >= self.max_kills:
                entry.status = QUARANTINED
                entry.owner = None
                entry.reason = (
                    f"killed its worker {entry.kills} time(s)"
                )
            else:
                entry._requeue(now + self.backoff_s(entry.attempts))
            touched.append(entry.index)
        return touched

    def requeue_owner(self, owner: str, now: float) -> List[int]:
        """The owner departed *cleanly* (goodbye) — requeue any leases it
        still held without blaming the cases.  Normally a no-op: workers
        drain their in-flight cases before saying goodbye."""
        touched: List[int] = []
        for entry in self._cases.values():
            if entry.status != LEASED or entry.owner != owner:
                continue
            entry._requeue(now)
            touched.append(entry.index)
        return touched

    def expire(self, now: float) -> List[int]:
        """Requeue (or quarantine) leases whose deadline has passed.

        No kill is charged — the connection may still be up, the worker
        just failed to finish in time — but the attempt budget caps how
        often one case can cycle.  Returns the indices touched.
        """
        touched: List[int] = []
        for entry in self._cases.values():
            if entry.status != LEASED or entry.deadline > now:
                continue
            if entry.attempts >= self.retry_limit:
                entry.status = QUARANTINED
                entry.owner = None
                entry.reason = (
                    f"retry budget exhausted after {entry.attempts} leases"
                )
            else:
                entry._requeue(now + self.backoff_s(entry.attempts))
            touched.append(entry.index)
        return touched

    def wait_hint(self, now: float) -> float:
        """How long a fetch should wait before retrying: until the
        nearest backoff gate opens, clamped to [0.05, 1.0] seconds."""
        nearest: Optional[float] = None
        for entry in self._cases.values():
            if entry.status == QUEUED:
                delta = entry.not_before - now
                if nearest is None or delta < nearest:
                    nearest = delta
        if nearest is None or nearest <= 0:
            return 0.05
        return max(0.05, min(1.0, nearest))

    # -- reporting -------------------------------------------------------

    def _record(self, entry: _Case) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "app": entry.app.key if hasattr(entry.app, "key") else str(entry.app),
            "scheme": entry.scheme,
            "seed": entry.seed,
            "reason": entry.reason,
            "kills": entry.kills,
            "attempts": entry.attempts,
        }
        if entry.error is not None:
            record["error"] = entry.error
        return record

    def quarantined_records(self) -> List[Dict[str, Any]]:
        return [self._record(e) for i in self._order
                for e in (self._cases[i],) if e.status == QUARANTINED]

    def error_records(self) -> List[Dict[str, Any]]:
        return [self._record(e) for i in self._order
                for e in (self._cases[i],) if e.status == ERRORED]
