"""The fabric wire protocol: length-prefixed JSON frames over TCP.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object with a ``"type"`` key.
Everything is stdlib: the fabric must run on any host that can run the
simulator, with nothing to install.

The conversation is strictly request/response — every frame a worker
sends is answered by exactly one coordinator frame, so both sides stay
single-threaded per connection and a blocking ``recv`` with a socket
timeout doubles as the liveness detector:

========================================  =====================================
worker -> coordinator                     coordinator -> worker
========================================  =====================================
``hello {worker, pid, host}``             ``welcome {spec, digest, verify}``
``fetch {worker}``                        ``lease {index, app, scheme, seed}``
                                          | ``wait {delay}`` | ``shutdown {}``
``result {index, payload}``               ``ack {}``
``error {index, error}``                  ``ack {}``
``heartbeat {}``                          ``ack {}``
``goodbye {}``                            ``ack {}``
========================================  =====================================

``lease.app`` travels in :meth:`repro.apps.registry.AppRef.to_jsonable`
form; ``result.payload`` is exactly what
:func:`repro.scenarios.executor._execute_case` returns (a bare artifact
row, or ``{"row": ..., "timeline": ..., "violations": ...}`` for
telemetry/verified sweeps) — the coordinator merges it through the same
code path as a local pool result, which is what keeps distributed
artifacts byte-identical to serial ones.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

#: Hard cap on one frame's payload.  A case row is a few KB and a dense
#: telemetry timeline a few MB; anything near this size is a protocol
#: error (or an attack), not data.
MAX_FRAME_BYTES = 256 << 20

_HEADER = struct.Struct(">I")


class FrameError(ConnectionError):
    """A malformed, oversized, or truncated frame — the connection is
    unusable and must be dropped (both sides treat it like a hangup)."""


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialize ``message`` and write one frame (blocking, whole)."""
    body = json.dumps(
        message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"refusing to send a {len(body)}-byte frame "
            f"(cap {MAX_FRAME_BYTES})"
        )
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """``n`` bytes, or None on EOF *before the first byte* (a clean
    hangup); EOF mid-read raises :class:`FrameError`."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if buf:
                raise FrameError(
                    f"connection closed {len(buf)}/{n} bytes into a read"
                )
            return None
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Socket timeouts (``socket.timeout``) propagate to the caller — a
    coordinator treats one as a missed heartbeat, a worker as a dead
    coordinator.  Garbage on the wire raises :class:`FrameError`.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise FrameError("connection closed between header and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FrameError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise FrameError(f"frame is not a typed object: {message!r}")
    return message


def request(sock: socket.socket, message: Dict[str, Any]) -> Dict[str, Any]:
    """One request/response round trip; a hangup instead of a reply is
    a :class:`FrameError` (the protocol promises exactly one reply)."""
    send_frame(sock, message)
    reply = recv_frame(sock)
    if reply is None:
        raise FrameError(f"no reply to {message.get('type')!r} frame")
    return reply


def parse_address(text: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """``"host:port"``, ``":port"``, or bare ``"port"`` -> (host, port)."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    host = host or default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad fabric address {text!r}: expected HOST:PORT, :PORT, or PORT"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"bad fabric port {port} in {text!r}")
    return host, port


def format_address(address: Tuple[str, int]) -> str:
    """(host, port) -> ``"host:port"``."""
    return f"{address[0]}:{address[1]}"
