"""Chaos harness: SIGKILL random fabric workers and prove determinism.

The fabric's headline claim is that worker death is invisible in the
output: a sweep that loses workers mid-run must still produce an
artifact *byte-identical* to a serial one.  :func:`run_chaos` proves it
end to end —

1. run the sweep serially through :func:`repro.scenarios.run_sweep`,
2. run it again through a real coordinator + N real worker
   *subprocesses* (spawned via ``python -m repro fabric worker``),
3. SIGKILL ``kills`` random live workers once a fraction of the matrix
   has merged, respawning replacements so the sweep can finish,
4. ``cmp`` the two artifacts.

Used three ways: the ``tests/fabric`` suite, the ``fabric-smoke`` CI
job, and by hand via ``python -m repro fabric chaos <scenario>``.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.fabric.coordinator import FabricCoordinator
from repro.fabric.protocol import format_address
from repro.scenarios import executor
from repro.scenarios.spec import ScenarioSpec
from repro.util.simlog import get_logger

log = get_logger()


def _worker_env(extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
    """Subprocess environment with ``src`` importable regardless of how
    the parent itself found the package."""
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    parts = [src_dir] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    if extra:
        env.update(extra)
    return env


class WorkerSupervisor:
    """Spawn, kill, respawn, and reap fabric worker subprocesses."""

    def __init__(
        self,
        address: Tuple[str, int],
        n_workers: int,
        *,
        jobs: int = 1,
        env: Optional[Dict[str, str]] = None,
        patience_s: float = 30.0,
        heartbeat_interval_s: float = 0.2,
    ) -> None:
        self._address = address
        self._n_workers = n_workers
        self._jobs = jobs
        self._env = _worker_env(env)
        self._patience_s = patience_s
        self._heartbeat_interval_s = heartbeat_interval_s
        self._procs: List[subprocess.Popen] = []
        self._spawned = 0
        self.respawns = 0
        self._lock = threading.Lock()

    def _spawn_one(self) -> subprocess.Popen:
        self._spawned += 1
        cmd = [
            sys.executable, "-m", "repro", "fabric", "worker",
            "--connect", format_address(self._address),
            "--id", f"chaos-w{self._spawned}",
            "--jobs", str(self._jobs),
            "--heartbeat-interval", str(self._heartbeat_interval_s),
            "--patience", str(self._patience_s),
        ]
        proc = subprocess.Popen(cmd, env=self._env)
        log.info("chaos: spawned worker chaos-w%d (pid %d)",
                 self._spawned, proc.pid)
        return proc

    def start(self) -> None:
        with self._lock:
            while len(self._procs) < self._n_workers:
                self._procs.append(self._spawn_one())

    def live(self) -> List[subprocess.Popen]:
        with self._lock:
            return [p for p in self._procs if p.poll() is None]

    def kill_one(self, rng: random.Random) -> Optional[int]:
        """SIGKILL one random live worker; returns its pid (or None)."""
        victims = self.live()
        if not victims:
            return None
        victim = rng.choice(victims)
        victim.kill()
        victim.wait()
        log.warning("chaos: SIGKILLed worker pid %d", victim.pid)
        return victim.pid

    def maintain(self) -> None:
        """Replace every dead worker so the fleet stays at strength.

        Exit code 0 means the coordinator ordered shutdown (the sweep
        is over) — only workers that *died* (SIGKILL shows as -9) or
        failed get replacements.
        """
        with self._lock:
            for i, proc in enumerate(self._procs):
                if proc.poll() is not None and proc.returncode != 0:
                    self._procs[i] = self._spawn_one()
                    self.respawns += 1

    def stop(self) -> None:
        with self._lock:
            procs, self._procs = self._procs, []
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


@dataclass
class ChaosResult:
    """What the chaos run proved."""

    identical: bool
    kills_delivered: int
    respawns: int
    n_cases: int
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    errors: List[Dict[str, Any]] = field(default_factory=list)
    serial_path: str = ""
    fabric_path: str = ""
    envelope: Dict[str, Any] = field(default_factory=dict)


def run_chaos(
    spec: ScenarioSpec,
    *,
    work_dir: str,
    n_workers: int = 2,
    kills: int = 1,
    kill_at_fraction: float = 0.5,
    seed: int = 0,
    jobs_per_worker: int = 1,
    worker_env: Optional[Dict[str, str]] = None,
    lease_timeout_s: float = 20.0,
    heartbeat_timeout_s: float = 5.0,
    backoff_base_s: float = 0.05,
    idle_timeout_s: Optional[float] = 120.0,
    max_cases: Optional[int] = None,
) -> ChaosResult:
    """SIGKILL ``kills`` workers mid-sweep; assert byte-identity anyway.

    ``kill_at_fraction`` sets how much of the matrix must have merged
    before the first kill lands (0.5 = halfway); later kills wait one
    further merged case each, so they spread across the remaining run.
    """
    os.makedirs(work_dir, exist_ok=True)
    serial_path = os.path.join(work_dir, "serial.json")
    fabric_path = os.path.join(work_dir, "fabric.json")

    log.info("chaos: serial reference sweep for %s", spec.name)
    executor.run_sweep(spec, jobs=1, out_path=serial_path,
                       max_cases=max_cases)

    merged = [0]
    merged_lock = threading.Lock()

    def on_progress(kind: str, index: int, app_key: str, scheme: str,
                    seed_: int) -> None:
        with merged_lock:
            merged[0] += 1

    coordinator = FabricCoordinator(
        spec,
        ("127.0.0.1", 0),
        max_cases=max_cases,
        lease_timeout_s=lease_timeout_s,
        heartbeat_timeout_s=heartbeat_timeout_s,
        backoff_base_s=backoff_base_s,
        idle_timeout_s=idle_timeout_s,
        on_progress=on_progress,
    )
    address = (coordinator.host, coordinator.port)
    log.info("chaos: coordinator on %s", format_address(address))

    supervisor = WorkerSupervisor(
        address, n_workers, jobs=jobs_per_worker, env=worker_env,
        patience_s=max(30.0, heartbeat_timeout_s * 6),
    )

    cases = list(spec.matrix.cases())
    if max_cases is not None:
        cases = cases[:max_cases]
    threshold = max(1, int(len(cases) * kill_at_fraction))

    done = threading.Event()
    delivered = [0]
    rng = random.Random(seed)

    def _chaos_loop() -> None:
        while not done.is_set():
            with merged_lock:
                progress = merged[0]
            if delivered[0] < kills and progress >= threshold + delivered[0]:
                if supervisor.kill_one(rng) is not None:
                    delivered[0] += 1
            supervisor.maintain()
            time.sleep(0.05)

    chaos_thread = threading.Thread(target=_chaos_loop, daemon=True)
    try:
        supervisor.start()
        chaos_thread.start()
        envelope = coordinator.run(out_path=fabric_path)
    finally:
        done.set()
        chaos_thread.join(timeout=5)
        supervisor.stop()

    with open(serial_path, "rb") as fh:
        serial_bytes = fh.read()
    with open(fabric_path, "rb") as fh:
        fabric_bytes = fh.read()
    identical = serial_bytes == fabric_bytes
    result = ChaosResult(
        identical=identical,
        kills_delivered=delivered[0],
        respawns=supervisor.respawns,
        n_cases=envelope["n_cases"],
        quarantined=list(envelope.get("quarantined", [])),
        errors=list(envelope.get("errors", [])),
        serial_path=serial_path,
        fabric_path=fabric_path,
        envelope=envelope,
    )
    log.info(
        "chaos: %s (%d kill(s), %d respawn(s), %d case(s))",
        "artifacts byte-identical" if identical else "ARTIFACT MISMATCH",
        result.kills_delivered, result.respawns, result.n_cases)
    return result
