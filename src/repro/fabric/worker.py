"""The fabric worker: a reconnecting executor agent.

A worker dials the coordinator, introduces itself, receives the sweep's
spec once (exactly like a pool initializer), and then loops: fetch a
lease, run the case through the *same* executor code path a local sweep
uses, stream the payload back, heartbeat while busy.  Cases run off the
protocol thread — on a daemon thread for ``jobs == 1``, on the warm
multiprocessing pool for ``jobs > 1`` — so heartbeats keep flowing
during a long simulation.

Failure posture:

* **Coordinator restart** — any send/recv error tears down the
  connection and enters a bounded reconnect loop (``patience_s`` of
  connect attempts); in-flight cases keep running and their results are
  delivered over the next connection.  The coordinator's ledger accepts
  the first result per case and ignores duplicates, so a re-queued
  case finishing twice is harmless.
* **Own death** (a case SIGKILLs the process, ``jobs == 1``) — nothing
  to do here: the TCP connection resets and the coordinator charges the
  kill to the leased case.
* **Pool-worker death** (``jobs > 1``) — the pool would hang silently
  (see :class:`repro.scenarios.executor.PoolBrokenError`), so the
  worker watches the pool's pid-set every loop; when it changes, the
  worker drops the connection *without* a goodbye and exits non-zero,
  which makes the death look identical to its own and keeps the
  kill-accounting honest.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.apps.registry import AppRef
from repro.fabric.protocol import (
    FrameError,
    format_address,
    recv_frame,
    request,
    send_frame,
)
from repro.scenarios import executor
from repro.scenarios.executor import ScenarioSpec, spec_digest  # noqa: F401
from repro.util.simlog import get_logger

log = get_logger()


class _Inflight:
    """One leased case in flight, however it executes."""

    __slots__ = ("index", "_event", "_payload", "_async")

    def __init__(self, index: int) -> None:
        self.index = index
        self._event = threading.Event()
        self._payload: Any = None
        self._async: Any = None

    def run_on_thread(self, spec: ScenarioSpec, app: AppRef, scheme: str,
                      seed: int, verify: bool) -> None:
        def _run() -> None:
            self._payload = executor._try_execute(
                spec, app, scheme, seed, verify=verify)
            self._event.set()

        threading.Thread(target=_run, daemon=True).start()

    def run_on_pool(self, pool: Any, app: AppRef, scheme: str,
                    seed: int) -> None:
        self._async = pool.apply_async(
            executor._case_worker, ((app, scheme, seed),))

    def ready(self) -> bool:
        if self._async is not None:
            return self._async.ready()
        return self._event.is_set()

    def take(self) -> Any:
        """The payload: an executor result, or ``{"__error__": ...}``."""
        if self._async is not None:
            return self._async.get()
        return self._payload


class FabricWorker:
    """One worker process's lifetime against one coordinator address."""

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        jobs: int = 1,
        worker_id: Optional[str] = None,
        heartbeat_interval_s: float = 1.0,
        io_timeout_s: float = 15.0,
        reconnect_delay_s: float = 0.5,
        patience_s: float = 60.0,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self._address = address
        self._jobs = jobs
        self._id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self._heartbeat_interval_s = float(heartbeat_interval_s)
        self._io_timeout_s = float(io_timeout_s)
        self._reconnect_delay_s = float(reconnect_delay_s)
        self._patience_s = float(patience_s)
        self._spec: Optional[ScenarioSpec] = None
        self._digest: Optional[str] = None
        self._verify = False
        self._pool: Any = None
        self._pool_pids: Any = None
        self._pending: Dict[int, _Inflight] = {}

    # -- lifecycle -------------------------------------------------------

    def run(self) -> int:
        """Serve until the coordinator orders shutdown (0), the pool
        breaks (1), or the coordinator stays unreachable past the
        patience window (1)."""
        if os.environ.get("REPRO_ENABLE_TEST_SCHEMES"):
            from repro.fabric.testing import ensure_registered
            ensure_registered()
        last_contact = time.monotonic()
        while True:
            try:
                sock = socket.create_connection(
                    self._address, timeout=self._io_timeout_s)
            except OSError as exc:
                if time.monotonic() - last_contact > self._patience_s:
                    log.error(
                        "fabric worker %s: coordinator %s unreachable for "
                        "%.0fs; giving up (%s)", self._id,
                        format_address(self._address), self._patience_s, exc)
                    return 1
                time.sleep(self._reconnect_delay_s)
                continue
            try:
                outcome = self._serve(sock)
            except (socket.timeout, FrameError, OSError) as exc:
                log.warning(
                    "fabric worker %s: connection lost (%s); reconnecting",
                    self._id, exc)
                outcome = "reconnect"
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            if outcome == "shutdown":
                return 0
            if outcome == "broken":
                return 1
            last_contact = time.monotonic()
            time.sleep(self._reconnect_delay_s)

    # -- one connection --------------------------------------------------

    def _serve(self, sock: socket.socket) -> str:
        sock.settimeout(self._io_timeout_s)
        send_frame(sock, {
            "type": "hello",
            "worker": self._id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
        })
        welcome = self._recv_welcome(sock)
        digest = welcome.get("digest", "")
        if self._digest is not None and digest != self._digest:
            # A different sweep took over this address: in-flight
            # results belong to the old case-index space; drop them.
            log.warning(
                "fabric worker %s: coordinator digest changed "
                "(%s -> %s); discarding %d stale in-flight case(s)",
                self._id, self._digest, digest, len(self._pending))
            self._pending.clear()
        if self._digest != digest:
            self._spec = ScenarioSpec.from_dict(welcome["spec"])
            self._digest = digest
            self._verify = bool(welcome.get("verify"))
        assert self._spec is not None
        log.info(
            "fabric worker %s: connected to %s (digest %s, jobs=%d, "
            "%d case(s) already in flight)", self._id,
            format_address(self._address), digest, self._jobs,
            len(self._pending))

        draining = False
        last_sent = time.monotonic()
        while True:
            # 1. Deliver every finished case (one reply per frame).
            for index in sorted(self._pending):
                task = self._pending[index]
                if not task.ready():
                    continue
                payload = task.take()
                del self._pending[index]
                if isinstance(payload, dict) and "__error__" in payload:
                    request(sock, {
                        "type": "error", "index": index,
                        "error": payload["__error__"],
                    })
                else:
                    request(sock, {
                        "type": "result", "index": index, "payload": payload,
                    })
                last_sent = time.monotonic()

            # 2. Watch the pool: a vanished pid means a case SIGKILLed a
            # pool worker and the in-flight result will never arrive.
            if self._pool is not None:
                pids = executor._pool_pids(self._pool)
                if pids != self._pool_pids:
                    log.error(
                        "fabric worker %s: pool worker died "
                        "(pids %s -> %s); exiting so the coordinator "
                        "re-queues the lease", self._id,
                        sorted(self._pool_pids), sorted(pids))
                    return "broken"

            # 3. Fill free executor slots.
            wait_delay = 0.0
            if not draining and len(self._pending) < self._jobs:
                reply = request(sock, {"type": "fetch", "worker": self._id})
                last_sent = time.monotonic()
                rtype = reply.get("type")
                if rtype == "lease":
                    self._dispatch(reply)
                    continue
                if rtype == "wait":
                    wait_delay = float(reply.get("delay", 0.1))
                elif rtype == "shutdown":
                    draining = True
                else:
                    raise FrameError(f"unexpected fetch reply {rtype!r}")

            if draining and not self._pending:
                request(sock, {"type": "goodbye"})
                log.info("fabric worker %s: drained; shutting down", self._id)
                return "shutdown"

            # 4. Keep the heartbeat fresher than the coordinator's
            # timeout while sleeping through waits / busy executors.
            now = time.monotonic()
            if now - last_sent >= self._heartbeat_interval_s:
                request(sock, {"type": "heartbeat"})
                last_sent = now
            time.sleep(min(0.05 + wait_delay, self._heartbeat_interval_s / 2)
                       if wait_delay else 0.05)

    def _recv_welcome(self, sock: socket.socket) -> Dict[str, Any]:
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != "welcome":
            raise FrameError(f"expected welcome, got {welcome!r}")
        return welcome

    def _dispatch(self, lease: Dict[str, Any]) -> None:
        assert self._spec is not None and self._digest is not None
        index = int(lease["index"])
        app = AppRef.coerce(lease["app"])
        scheme = str(lease["scheme"])
        seed = int(lease["seed"])
        task = _Inflight(index)
        if self._jobs > 1:
            if self._pool is None:
                self._pool = executor._warm_pool(
                    self._jobs, self._spec, self._digest, self._verify)
                self._pool_pids = executor._pool_pids(self._pool)
            task.run_on_pool(self._pool, app, scheme, seed)
        else:
            task.run_on_thread(self._spec, app, scheme, seed, self._verify)
        self._pending[index] = task
        log.info(
            "fabric worker %s: leased case %d (%s/%s/seed=%d)",
            self._id, index, app.key, scheme, seed)
