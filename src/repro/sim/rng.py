"""Named, reproducible random-number streams.

Every stochastic component (packet loss, workload generation, failure
injection, GPS noise, ...) draws from its *own* named stream derived from a
single master seed.  This gives two properties the experiments rely on:

1. **Reproducibility** — the same master seed always yields the same run.
2. **Variance isolation** — changing, say, the failure schedule does not
   perturb the packet-loss sequence, so A/B comparisons between fault-
   tolerance schemes see identical channel conditions.

Streams are ``numpy.random.Generator`` instances derived via
``SeedSequence.spawn``-style keying on the stream name, so the mapping
from name to stream is order-independent.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        if not isinstance(master_seed, int):
            raise TypeError("master_seed must be an int")
        self.master_seed = master_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (master_seed, name) pair always produces a generator with
        the same initial state, regardless of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.master_seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, sub_seed: int) -> "RngRegistry":
        """Derive an independent registry (e.g. one per experiment trial)."""
        return RngRegistry(master_seed=(self.master_seed * 1_000_003 + sub_seed))

    def names(self):
        """Names of all streams created so far (for diagnostics)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.master_seed} streams={len(self._streams)}>"
