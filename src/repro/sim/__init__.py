"""Discrete-event simulation kernel.

A small, dependency-free, SimPy-flavoured event loop used as the substrate
for every MobiStreams experiment.  The public surface is:

* :class:`~repro.sim.core.Simulator` — the event loop and virtual clock.
* :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AnyOf`, :class:`~repro.sim.events.AllOf` —
  awaitable occurrences.
* :class:`~repro.sim.process.Process` and
  :class:`~repro.sim.process.Interrupt` — generator-based coroutines.
* :class:`~repro.sim.resources.Resource` and
  :class:`~repro.sim.resources.Store` — contended capacity and mailboxes.
* :class:`~repro.sim.rng.RngRegistry` — named, reproducible random streams.
* :class:`~repro.sim.monitor.Trace` — structured event recording.

Design notes
------------
The kernel is deliberately deterministic: given the same master seed and
the same sequence of API calls, two runs produce identical traces.  All
randomness is funnelled through :class:`~repro.sim.rng.RngRegistry`; the
event queue breaks time ties by insertion order.
"""

from repro.sim.core import Simulator, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.monitor import Counter, Trace
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngRegistry",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
    "Trace",
]
