"""The simulator: virtual clock plus event queue.

The queue orders events by ``(time, priority, sequence)``; the sequence
number makes scheduling deterministic for simultaneous events.  Priority 0
is reserved for "urgent" occurrences (process initialization, interrupts)
so they pre-empt ordinary events scheduled at the same instant; ordinary
events use priority 1.

Two scheduler backends implement that total order:

``heap``
    A binary heap (the default, and the determinism oracle the other
    backend is tested against).
``calendar``
    A :class:`~repro.sim.calendar.CalendarQueue` — amortized O(1)
    push/pop for the timer-churn-heavy schedules fleet-scale runs
    produce, at the price of a slightly costlier ``peek``.

Select with ``Simulator(scheduler=...)`` or the ``REPRO_SIM_SCHEDULER``
environment variable (the argument wins).  Both produce byte-identical
event orders, so artifacts never depend on the choice.
"""

from __future__ import annotations

import heapq
import os
from functools import partial
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.calendar import CalendarQueue
from repro.sim.events import (  # noqa: F401  (NORMAL/URGENT re-exported)
    NORMAL,
    URGENT,
    _DEAD_DROPPED,
    AllOf,
    AnyOf,
    Callback,
    Event,
    Timeout,
)
from repro.sim.process import Process

#: Known scheduler backends.
SCHEDULERS = ("heap", "calendar")


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Discrete-event simulator with a float-seconds virtual clock.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    #: Compaction trigger: once at least this many cancelled entries are
    #: queued *and* they outnumber live ones, the queue is rebuilt.  The
    #: floor keeps tiny queues from compacting on every cancellation.
    COMPACT_MIN_DEAD = 64

    def __init__(
        self, start_time: float = 0.0, scheduler: Optional[str] = None
    ) -> None:
        self._now = float(start_time)
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SIM_SCHEDULER") or "heap"
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected one of "
                + ", ".join(SCHEDULERS)
            )
        #: Which queue backend orders the schedule ("heap" or "calendar").
        self.scheduler = scheduler
        if scheduler == "calendar":
            self._calendar: Optional[CalendarQueue] = CalendarQueue()
            self._queue: Optional[List[Tuple[float, int, int, Event]]] = None
            self._push: Callable[[Tuple[float, int, int, Event]], None] = (
                self._calendar.push
            )
        else:
            self._calendar = None
            self._queue = []
            # A C-level partial: the fused Timeout constructor calls this
            # once per scheduled event, so it must not cost a Python frame.
            self._push = partial(heapq.heappush, self._queue)
        self._seq = 0
        #: Cancelled-but-still-queued entries (lazy deletion bookkeeping).
        self.dead_entries = 0
        self._active_process: Optional[Process] = None
        #: Events processed so far (the perf subsystem's events/sec).
        self.events_processed = 0
        #: When True, :meth:`run` keeps ``events_processed`` current on
        #: every event instead of batch-flushing at loop exit — set by
        #: live observers (telemetry) that sample mid-run.
        self.count_inline = False

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    def call_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return Callback(self, time - self._now, fn, args)

    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time.

        Accepting ``*args`` directly lets hot callers (network delivery)
        skip building a fresh closure per scheduled call.
        """
        return Callback(self, delay, fn, args)

    def call_every(
        self, interval: float, fn: Callable[..., None], *args: Any
    ) -> Callable[[], None]:
        """Run ``fn(*args)`` every ``interval`` seconds of virtual time,
        starting one interval from now.  Returns a zero-argument cancel
        function; after cancelling, no further calls fire (including one
        already scheduled).

        This is the sampling hook for periodic observers (telemetry):
        each firing schedules only the next one, and cancelling also
        cancels the in-flight event, so a dead sampler leaves nothing in
        the queue.  An active sampler keeps the queue non-empty forever —
        pair it with ``run(until=...)`` or cancel it before a final drain.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        # [cancelled?, pending Callback] — one shared cell per sampler.
        state: List[Any] = [False, None]

        def _fire() -> None:
            if state[0]:
                return
            fn(*args)
            if not state[0]:
                state[1] = Callback(self, interval, _fire, ())

        state[1] = Callback(self, interval, _fire, ())

        def cancel() -> None:
            state[0] = True
            pending = state[1]
            if pending is not None:
                pending.cancel()
                state[1] = None

        return cancel

    # -- scheduling --------------------------------------------------------
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Insert a triggered event into the queue (internal)."""
        self._seq += 1
        self._push((self._now + delay, priority, self._seq, event))

    def _queued(self) -> int:
        """Entries currently scheduled (live + cancelled)."""
        if self._calendar is not None:
            return len(self._calendar)
        return len(self._queue)

    def _note_cancelled(self) -> None:
        """Bookkeeping for a lazily-deleted (cancelled) queue entry.

        Cancelled entries normally just sit until their deadline pops
        them as no-ops; when they outnumber live entries the queue is
        compacted wholesale so ghost timers can't dominate push/pop
        costs in churn-heavy workloads.
        """
        self.dead_entries += 1
        if (
            self.dead_entries >= self.COMPACT_MIN_DEAD
            and self.dead_entries * 2 >= self._queued()
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the queue without its cancelled entries.

        Removed timeouts are flagged ``_DEAD_DROPPED`` so a later
        ``add_callback`` revival knows no queue entry survives and
        re-pushes one at the stored deadline.
        """
        if self._calendar is not None:
            self._calendar.compact()
        else:
            # In-place so run()'s local alias to the list stays valid.
            live = []
            for item in self._queue:
                if item[3].callbacks is not None:
                    live.append(item)
                else:
                    item[3]._cancelled = _DEAD_DROPPED
            self._queue[:] = live
            heapq.heapify(self._queue)
        self.dead_entries = 0

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._calendar is not None:
            item = self._calendar.peek()
            return item[0] if item is not None else float("inf")
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event; raises :class:`EmptySchedule` if none."""
        if self._calendar is not None:
            if not self._calendar:
                raise EmptySchedule()
            self._now, _prio, _seq, event = self._calendar.pop()
        else:
            try:
                self._now, _prio, _seq, event = heapq.heappop(self._queue)
            except IndexError:
                raise EmptySchedule() from None
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # A cancelled entry reaching its deadline: nothing runs, but
            # it still counts as processed (identical to the pre-cancel
            # behavior of popping an orphaned timeout).  Clearing the
            # flag makes a later add_callback fire immediately (expired
            # timeout) instead of reviving an entry that no longer exists.
            event._cancelled = False
            self.dead_entries -= 1
            return
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event._defused:
            # An un-handled failure: surface it rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring SimPy semantics.
        """
        if until is not None:
            if until < self._now:
                raise ValueError(f"until ({until}) is in the past (now={self._now})")
            stopper = self.timeout(until - self._now)
            stopper.add_callback(self._stop_callback)
        if self._calendar is not None:
            self._run_calendar(until)
            return
        # The event loop is inlined here (rather than calling step() per
        # event): the method-call overhead, the per-event try/except, and
        # the repeated attribute lookups are measurable at millions of
        # events per run.  Semantics are identical to step().
        #
        # The counter is normally batched into a local and flushed once;
        # with ``count_inline`` set (live telemetry attached) every event
        # bumps the attribute so observers sampling mid-run see the true
        # count.  The flag costs nothing when unset — it selects which
        # loop runs, not a per-event branch.
        queue = self._queue
        heappop = heapq.heappop
        if self.count_inline:
            try:
                while queue:
                    self._now, _prio, _seq, event = heappop(queue)
                    self.events_processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    if callbacks is None:
                        event._cancelled = False
                        self.dead_entries -= 1
                        continue
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event._defused:
                        raise event._value
                if until is not None and self._now < until:
                    self._now = until
            except StopSimulation:
                pass
            return
        processed = 0
        try:
            while queue:
                self._now, _prio, _seq, event = heappop(queue)
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                if callbacks is None:
                    event._cancelled = False
                    self.dead_entries -= 1
                    continue
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    self.events_processed += processed
                    processed = 0
                    raise event._value
            self.events_processed += processed
            if until is not None and self._now < until:
                self._now = until
        except StopSimulation:
            self.events_processed += processed

    def _run_calendar(self, until: Optional[float]) -> None:
        """The run loop over the calendar backend (semantics of run())."""
        calendar = self._calendar
        pop = calendar.pop
        inline = self.count_inline
        processed = 0
        try:
            while calendar._n:
                self._now, _prio, _seq, event = pop()
                if inline:
                    self.events_processed += 1
                else:
                    processed += 1
                callbacks, event.callbacks = event.callbacks, None
                if callbacks is None:
                    event._cancelled = False
                    self.dead_entries -= 1
                    continue
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    self.events_processed += processed
                    processed = 0
                    raise event._value
            self.events_processed += processed
            if until is not None and self._now < until:
                self._now = until
        except StopSimulation:
            self.events_processed += processed

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` triggers; returns its value (raises if failed)."""
        event.add_callback(self._stop_callback)
        try:
            while not event.triggered:
                self.step()
        except StopSimulation:
            pass
        if event._ok is False:
            event.defuse()
            raise event._value
        return event.value

    @staticmethod
    def _stop_callback(_event: Event) -> None:
        raise StopSimulation()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator t={self._now:.6f} queued={self._queued()} "
            f"scheduler={self.scheduler}>"
        )
