"""The simulator: virtual clock plus event queue.

The queue orders events by ``(time, priority, sequence)``; the sequence
number makes scheduling deterministic for simultaneous events.  Priority 0
is reserved for "urgent" occurrences (process initialization, interrupts)
so they pre-empt ordinary events scheduled at the same instant; ordinary
events use priority 1.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.events import (  # noqa: F401  (NORMAL/URGENT re-exported)
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Callback,
    Event,
    Timeout,
)
from repro.sim.process import Process


class StopSimulation(Exception):
    """Raised internally to end :meth:`Simulator.run` early."""


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


class Simulator:
    """Discrete-event simulator with a float-seconds virtual clock.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.value == "done"
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: Events processed so far (the perf subsystem's events/sec).
        self.events_processed = 0
        #: When True, :meth:`run` keeps ``events_processed`` current on
        #: every event instead of batch-flushing at loop exit — set by
        #: live observers (telemetry) that sample mid-run.
        self.count_inline = False

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    def call_at(self, time: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return Callback(self, time - self._now, fn, args)

    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time.

        Accepting ``*args`` directly lets hot callers (network delivery)
        skip building a fresh closure per scheduled call.
        """
        return Callback(self, delay, fn, args)

    def call_every(
        self, interval: float, fn: Callable[..., None], *args: Any
    ) -> Callable[[], None]:
        """Run ``fn(*args)`` every ``interval`` seconds of virtual time,
        starting one interval from now.  Returns a zero-argument cancel
        function; after cancelling, no further calls fire (including one
        already scheduled).

        This is the sampling hook for periodic observers (telemetry):
        each firing schedules only the next one, so a cancelled sampler
        leaves at most one dead event behind.  An active sampler keeps
        the queue non-empty forever — pair it with ``run(until=...)``
        or cancel it before a final drain.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        cancelled = [False]

        def _fire() -> None:
            if cancelled[0]:
                return
            fn(*args)
            if not cancelled[0]:
                Callback(self, interval, _fire, ())

        Callback(self, interval, _fire, ())

        def cancel() -> None:
            cancelled[0] = True

        return cancel

    # -- scheduling --------------------------------------------------------
    def _schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Insert a triggered event into the queue (internal)."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event; raises :class:`EmptySchedule` if none."""
        try:
            self._now, _prio, _seq, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event._defused:
            # An un-handled failure: surface it rather than losing it.
            exc = event._value
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring SimPy semantics.
        """
        if until is not None:
            if until < self._now:
                raise ValueError(f"until ({until}) is in the past (now={self._now})")
            stopper = self.timeout(until - self._now)
            stopper.add_callback(self._stop_callback)
        # The event loop is inlined here (rather than calling step() per
        # event): the method-call overhead, the per-event try/except, and
        # the repeated attribute lookups are measurable at millions of
        # events per run.  Semantics are identical to step().
        #
        # The counter is normally batched into a local and flushed once;
        # with ``count_inline`` set (live telemetry attached) every event
        # bumps the attribute so observers sampling mid-run see the true
        # count.  The flag costs nothing when unset — it selects which
        # loop runs, not a per-event branch.
        queue = self._queue
        heappop = heapq.heappop
        if self.count_inline:
            try:
                while queue:
                    self._now, _prio, _seq, event = heappop(queue)
                    self.events_processed += 1
                    callbacks, event.callbacks = event.callbacks, None
                    for callback in callbacks:
                        callback(event)
                    if event._ok is False and not event._defused:
                        raise event._value
                if until is not None and self._now < until:
                    self._now = until
            except StopSimulation:
                pass
            return
        processed = 0
        try:
            while queue:
                self._now, _prio, _seq, event = heappop(queue)
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    self.events_processed += processed
                    processed = 0
                    raise event._value
            self.events_processed += processed
            if until is not None and self._now < until:
                self._now = until
        except StopSimulation:
            self.events_processed += processed

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` triggers; returns its value (raises if failed)."""
        event.add_callback(self._stop_callback)
        try:
            while not event.triggered:
                self.step()
        except StopSimulation:
            pass
        if event._ok is False:
            event.defuse()
            raise event._value
        return event.value

    @staticmethod
    def _stop_callback(_event: Event) -> None:
        raise StopSimulation()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6f} queued={len(self._queue)}>"
