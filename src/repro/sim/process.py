"""Generator-based simulation processes.

A process wraps a Python generator that ``yield``s :class:`~repro.sim.events.Event`
instances.  When a yielded event triggers, the process resumes with the
event's value (or the event's exception is thrown into the generator).

Processes are themselves events: they trigger when the generator returns
(value = the ``StopIteration`` value) or raises.  This lets processes wait
on each other and compose with :class:`~repro.sim.events.AllOf` /
:class:`~repro.sim.events.AnyOf`.

Interrupts
----------
:meth:`Process.interrupt` throws an :class:`Interrupt` into the generator
at its current wait point — the mechanism used for phone failures and
departures: the failure injector interrupts every process pinned to a
phone, and the process's ``except Interrupt`` handler (or its absence)
models crash semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import PENDING, Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Attributes
    ----------
    cause:
        Arbitrary object describing why the process was interrupted
        (e.g. a :class:`~repro.device.failures.PhoneFailure`).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Process(Event):
    """A running simulation coroutine.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        A generator yielding events.
    name:
        Optional label used in traces and ``repr``.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        #: The event this process is currently waiting on (None when ready).
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off the process via an immediately-scheduled initialization
        # event so process bodies never run inside the constructor.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        sim._schedule(init, priority=0)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point.

        Interrupting a finished process is a no-op error; interrupting a
        process twice before it resumes queues both interrupts.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is self:  # pragma: no cover - defensive
            raise RuntimeError("a process cannot interrupt itself synchronously")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, priority=0)

    # -- engine ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        if not self.is_alive:
            # Late interrupt or stale callback after termination: drop it.
            return
        # Detach from the event we were waiting on (it may differ from
        # `event` when an interrupt pre-empts the wait).
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            else:
                if not target.callbacks and type(target) is Timeout:
                    # A pre-empted plain timeout with no other listener
                    # would sit in the queue as a ghost until its
                    # deadline; cancel it so interrupt-heavy workloads
                    # (failure storms, churn) don't drag dead timers.
                    target.cancel()
        self._target = None
        self.sim._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                # The event failed: throw its exception into the process.
                event.defuse()
                next_event = self._generator.throw(event._value)
        except StopIteration as exc:
            self.sim._active_process = None
            self.succeed(exc.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self.fail(exc)
            return
        self.sim._active_process = None

        if not isinstance(next_event, Event):
            error = RuntimeError(
                f"process {self.name!r} yielded {next_event!r}, "
                "which is not an Event"
            )
            self._generator.close()
            self.fail(error)
            return
        if next_event.sim is not self.sim:
            error = RuntimeError(
                f"process {self.name!r} yielded an event from another simulator"
            )
            self._generator.close()
            self.fail(error)
            return

        self._target = next_event
        next_event.add_callback(self._resume)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} {state}>"
