"""Event primitives for the simulation kernel.

Events are one-shot occurrences on the virtual timeline.  An event moves
through three states:

``pending``   — created, not yet triggered.
``triggered`` — has a value (or an exception) and sits in the event queue.
``processed`` — its callbacks have run.

Processes (see :mod:`repro.sim.process`) wait on events by ``yield``-ing
them; arbitrary code can also attach callbacks directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.core import Simulator

#: Sentinel for "no value yet".
PENDING = object()

#: Queue priorities.  Defined here (not in core) so the fused Timeout
#: construction can push directly; :mod:`repro.sim.core` re-exports
#: them as its public names.
#: Priority for urgent events (interrupts, process init).
URGENT = 0
#: Priority for normal events.
NORMAL = 1

#: ``Timeout._cancelled`` states (``False`` means live or already fired).
#: A cancelled timeout's queue entry either still sits in the schedule
#: (lazy deletion) or has been physically removed by a wholesale
#: compaction — reviving it must know which, because only in the first
#: case is there an entry left to un-mark.
_DEAD_QUEUED = 1
_DEAD_DROPPED = 2


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.core.Simulator`.

    Notes
    -----
    ``succeed``/``fail`` may be called at most once; a second call raises
    :class:`RuntimeError`.  Failed events whose exception is never consumed
    (no callback, no waiting process) re-raise at the end of the step so
    errors are not silently dropped.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callables ``cb(event)`` invoked when the event is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        """``True`` for success, ``False`` for failure, ``None`` if pending."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    def defuse(self) -> None:
        """Mark a failed event as handled, suppressing re-raise."""
        self._defused = True

    @property
    def defused(self) -> bool:
        """Whether a failure has been marked as handled."""
        return self._defused

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event itself so that ``return event.succeed()`` chains.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into any process waiting on this event.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._ok is None:
            # Without this guard a pending source would fall through to
            # fail(PENDING) and blow up on the sentinel object with a
            # baffling TypeError.
            raise RuntimeError(
                f"cannot trigger {self!r} from {event!r}: the source event "
                "is still pending (trigger() copies a *decided* outcome)"
            )
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs immediately if already processed."""
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of virtual time in the future."""

    __slots__ = ("delay", "deadline", "_cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Fused construction: a timeout is born triggered and scheduled,
        # so the base-class pending state and the _schedule() indirection
        # are skipped — this is the single most-allocated event type.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._cancelled = False
        self.delay = delay
        self.deadline = sim._now + delay
        sim._seq += 1
        sim._push((self.deadline, NORMAL, sim._seq, self))

    def cancel(self) -> None:
        """Lazily delete this timeout from the schedule.

        The queue entry stays put (removing from the middle of a heap is
        O(n)) but is marked dead: popping it runs nothing, and when dead
        entries outnumber live ones the simulator compacts the queue
        wholesale.  Any callbacks still attached are discarded — only
        cancel a timeout nothing else is waiting on.  A no-op once the
        timeout has fired.
        """
        if self.callbacks is not None:
            self._cancelled = _DEAD_QUEUED
            self.callbacks = None
            self.sim._note_cancelled()

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; re-arms the timeout if it was cancelled."""
        if self.callbacks is not None:
            self.callbacks.append(callback)
            return
        state = self._cancelled
        if not state:
            # Fired (or its dead entry already popped at the deadline):
            # run immediately, like any processed event.
            callback(self)
            return
        # Cancelled before its deadline: attaching a listener revives it
        # so it fires at the original deadline.
        self._cancelled = False
        sim = self.sim
        if state == _DEAD_QUEUED:
            # The lazily-deleted entry is still in the queue — un-mark it.
            self.callbacks = [callback]
            sim.dead_entries -= 1
        elif self.deadline >= sim._now:
            # Compaction dropped the entry; schedule a fresh one.
            self.callbacks = [callback]
            sim._seq += 1
            sim._push((self.deadline, NORMAL, sim._seq, self))
        else:
            # Dropped by compaction and the deadline has since passed:
            # behave like an expired timeout and run immediately.
            callback(self)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events trigger themselves")


def _run_deferred(event: "Event") -> None:
    """Module-level trampoline for :class:`Callback` (no per-call closure)."""
    event._fn(*event._args)


class Callback(Timeout):
    """A timeout that invokes a stored callable when it fires.

    ``Simulator.call_in``/``call_at`` used to allocate a Timeout *plus* a
    closure per delivery; this carries the function and its arguments in
    slots and dispatches through one shared module-level trampoline.
    """

    __slots__ = ("_fn", "_args")

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        fn: Callable[..., None],
        args: tuple = (),
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.sim = sim
        self.callbacks = [_run_deferred]
        self._value = None
        self._ok = True
        self._defused = False
        self._cancelled = False
        self.delay = delay
        self.deadline = sim._now + delay
        self._fn = fn
        self._args = args
        sim._seq += 1
        sim._push((self.deadline, NORMAL, sim._seq, self))


class ConditionValue:
    """Mapping-like result of a condition: the events that fired, in order."""

    __slots__ = ("events",)

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        """Return ``{event: value}`` for all fired events."""
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event over a set of sub-events.

    Fires when ``evaluate(events, n_fired)`` returns True.  Failure of any
    sub-event fails the condition immediately.
    """

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        sim: "Simulator",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("events belong to different simulators")

        if not self._events or self._evaluate(self._events, 0):
            # Degenerate condition: trivially true.
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            self._detach_pending()
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            fired = [e for e in self._events if e.triggered and e.ok]
            self.succeed(ConditionValue(fired))
            self._detach_pending()

    def _detach_pending(self) -> None:
        """Stop listening to sub-events once the condition has decided.

        The losers of an AnyOf race would otherwise hold our ``_check``
        until they fire; a timeout left with no listeners at all is
        cancelled outright so ghost timers don't accumulate in
        churn-heavy workloads (each loser formerly occupied the queue
        until its deadline).
        """
        for ev in self._events:
            cbs = ev.callbacks
            if cbs:
                try:
                    cbs.remove(self._check)
                except ValueError:
                    continue
                if not cbs and isinstance(ev, Timeout):
                    ev.cancel()

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluator: every sub-event has fired."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Evaluator: at least one sub-event has fired."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition that fires when *all* of ``events`` have succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires when *any* of ``events`` has succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, Condition.any_events, events)
