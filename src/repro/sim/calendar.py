"""A calendar queue: the bucketed scheduler backend for :class:`Simulator`.

The binary heap is a fine default, but at fleet scale the schedule is
dominated by *timer churn*: hundreds of thousands of timeouts that are
scheduled a short, similar distance into the future (battery ticks,
heartbeats, retransmit timers) and popped in near-FIFO order.  A heap
pays O(log n) sift costs per operation on a queue whose ordering is
almost trivial.  Brown's calendar queue (CACM '88) exploits exactly this
shape: a ring of ``nb`` buckets, each ``width`` seconds of virtual time
wide, so bucket ``i`` holds events due in windows ``[k*width, (k+1)*width)``
with ``k % nb == i``.  Push hashes on time; pop scans forward from the
current window.  With width tuned so ~O(1) events share a window, both
operations are amortized O(1).

Each bucket is itself a small heap keyed by the full ``(time, priority,
seq)`` tuple, so simultaneous events keep the exact deterministic order
the heap backend produces — the two backends are interchangeable oracle
and optimization (see ``tests/scenarios/test_scheduler_equivalence.py``).

Items are the simulator's queue entries: ``(time, priority, seq, event)``.
Times must be finite; the simulator never schedules at +inf.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, List, Optional, Tuple

from repro.sim.events import _DEAD_DROPPED

#: A scheduled entry, identical to the heap backend's tuples.
Item = Tuple[float, int, int, Any]


class CalendarQueue:
    """Bucketed priority queue over ``(time, priority, seq, event)`` items.

    The bucket count and width resize automatically (and
    deterministically — resizes are triggered by item counts, never by
    wall-clock measurements) to track the live event density.
    """

    #: Never shrink below this many buckets.
    MIN_BUCKETS = 8

    __slots__ = ("_buckets", "_nb", "_width", "_epoch", "_n", "_last")

    def __init__(self, width: float = 1.0) -> None:
        self._nb = self.MIN_BUCKETS
        self._buckets: List[List[Item]] = [[] for _ in range(self._nb)]
        self._width = float(width)
        #: Bucket-sequence number (``time // width``) of the current window.
        self._epoch = 0
        self._n = 0
        #: Time of the most recent pop (the floor for future pushes).
        self._last = 0.0

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    # -- core operations -------------------------------------------------
    def push(self, item: Item) -> None:
        """Insert ``item``; its time must be >= the last popped time."""
        t = item[0]
        w = int(t // self._width)
        if not self._n or w < self._epoch:
            # Keep the scan anchor at (or before) the minimal item's
            # window.  An empty queue re-anchors on the first push; a
            # later push may still be *earlier* than that first item
            # (anything >= the last popped time is legal), so the anchor
            # must follow it down or pop() would skip its window.
            self._epoch = w
        heappush(self._buckets[w % self._nb], item)
        self._n += 1
        if self._n > 2 * self._nb:
            self._resize(self._nb * 2)

    def pop(self) -> Item:
        """Remove and return the globally minimal item."""
        if not self._n:
            raise IndexError("pop from an empty CalendarQueue")
        nb = self._nb
        width = self._width
        buckets = self._buckets
        e = self._epoch
        for _ in range(nb):
            bucket = buckets[e % nb]
            # Window membership is computed with the same ``// width``
            # floor as push() so boundary rounding can never strand an
            # item between windows.
            if bucket and bucket[0][0] // width <= e:
                item = heappop(bucket)
                self._n -= 1
                self._last = item[0]
                self._epoch = int(item[0] // width)
                if self._n < self._nb // 2 and self._nb > self.MIN_BUCKETS:
                    self._resize(self._nb // 2)
                return item
            e += 1
        # Nothing due within a full year (a sparse tail): jump straight
        # to the globally minimal item instead of scanning year by year.
        best: Optional[List[Item]] = None
        for bucket in buckets:
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
        assert best is not None
        item = heappop(best)
        self._n -= 1
        self._last = item[0]
        self._epoch = int(item[0] // width)
        if self._n < self._nb // 2 and self._nb > self.MIN_BUCKETS:
            self._resize(self._nb // 2)
        return item

    def peek(self) -> Optional[Item]:
        """The minimal item without removing it (O(buckets))."""
        if not self._n:
            return None
        best: Optional[Item] = None
        for bucket in self._buckets:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return best

    # -- maintenance -----------------------------------------------------
    def compact(self) -> None:
        """Drop cancelled entries (``event.callbacks is None``) eagerly.

        Dropped timeouts are flagged so a later revival knows its entry
        is gone and re-pushes one (see ``Timeout.add_callback``).
        """
        n = 0
        for bucket in self._buckets:
            live = []
            for it in bucket:
                if it[3].callbacks is not None:
                    live.append(it)
                else:
                    it[3]._cancelled = _DEAD_DROPPED
            bucket[:] = live
            heapify(bucket)
            n += len(bucket)
        self._n = n

    def _resize(self, nb: int) -> None:
        """Rebuild with ``nb`` buckets and a width fit to the current spread."""
        items = [it for bucket in self._buckets for it in bucket]
        width = self._width
        if len(items) > 1:
            lo = min(it[0] for it in items)
            hi = max(it[0] for it in items)
            if hi > lo:
                # Aim for ~2 items per window so the pop scan usually
                # terminates in its first bucket.
                width = 2.0 * (hi - lo) / len(items)
        nb = max(nb, self.MIN_BUCKETS)
        buckets: List[List[Item]] = [[] for _ in range(nb)]
        for it in items:
            buckets[int(it[0] // width) % nb].append(it)
        for bucket in buckets:
            heapify(bucket)
        self._buckets = buckets
        self._nb = nb
        self._width = width
        self._epoch = int(self._last // width)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CalendarQueue n={self._n} buckets={self._nb} "
            f"width={self._width:.6g}>"
        )
