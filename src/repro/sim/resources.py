"""Contended resources and mailboxes.

Two primitives cover every need in this codebase:

* :class:`Resource` — ``capacity`` interchangeable slots, FIFO queueing.
  Used for the half-duplex WiFi channel (capacity 1) and CPU cores.
* :class:`Store` — an unbounded (or bounded) FIFO of Python objects with
  blocking ``get``.  Used as per-node tuple mailboxes and control queues.

Both hand out plain :class:`~repro.sim.events.Event` objects so processes
simply ``yield`` them.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator


class Request(Event):
    """Event granted when a :class:`Resource` slot becomes available."""

    __slots__ = ("resource",)

    def __init__(self, sim: "Simulator", resource: "Resource") -> None:
        super().__init__(sim)
        self.resource = resource

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` interchangeable slots with FIFO granting.

    Usage from a process::

        req = channel.request()
        yield req
        try:
            yield sim.timeout(tx_time)
        finally:
            channel.release(req)
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._users: set = set()
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self.sim, self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot; grants the longest-waiting request, if any.

        Releasing a request that was never granted cancels it instead.
        """
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass  # already released / cancelled: idempotent

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            if nxt.triggered:  # cancelled while waiting
                continue
            self._users.add(nxt)
            nxt.succeed()


class Store:
    """FIFO mailbox of arbitrary items with blocking ``get``.

    ``put`` never blocks unless ``capacity`` is set and reached, in which
    case it raises (back-pressure in this codebase is modelled at the
    network layer, not in mailboxes — a bounded mailbox overflowing is a
    programming error we want loud).
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None) -> None:
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Deque[Any]:
        """The queued items (read-only view by convention)."""
        return self._items

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter, if any."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise OverflowError(
                f"Store capacity {self.capacity} exceeded; "
                "mailbox overflow indicates a modelling bug"
            )
        self._items.append(item)
        self._dispatch()

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        ev = Event(self.sim)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> Any:
        """Non-blocking pop; returns None when empty."""
        if self._items and not self._getters:
            return self._items.popleft()
        return None

    def clear(self) -> int:
        """Drop all queued items; returns how many were dropped."""
        n = len(self._items)
        self._items.clear()
        return n

    def cancel_getters(self, exc: BaseException) -> None:
        """Fail all pending ``get`` events (used when a node dies)."""
        getters, self._getters = self._getters, deque()
        for ev in getters:
            if not ev.triggered:
                ev.fail(exc)

    def _dispatch(self) -> None:
        while self._items and self._getters:
            ev = self._getters.popleft()
            if ev.triggered:  # cancelled getter
                continue
            ev.succeed(self._items.popleft())


class _FilterGet(Event):
    """Get-event carrying the predicate it is waiting to satisfy."""

    __slots__ = ("_predicate",)

    def __init__(self, sim: "Simulator", predicate) -> None:
        super().__init__(sim)
        self._predicate = predicate


class FilterStore(Store):
    """A :class:`Store` whose getters may demand a matching predicate."""

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event that fires with the first item satisfying ``predicate``."""
        ev = _FilterGet(self.sim, predicate)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        made_progress = True
        while made_progress:
            made_progress = False
            for ev in list(self._getters):
                if ev.triggered:
                    self._getters.remove(ev)
                    continue
                pred = getattr(ev, "_predicate", None)
                for item in self._items:
                    if pred is None or pred(item):
                        self._items.remove(item)
                        self._getters.remove(ev)
                        ev.succeed(item)
                        made_progress = True
                        break
                if made_progress:
                    break
