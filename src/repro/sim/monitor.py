"""Structured trace recording and counters.

Every subsystem reports into a shared :class:`Trace`: checkpoint rounds,
failures, recoveries, tuple completions, bytes on each network.  The bench
harness then derives throughput/latency/data-volume metrics purely from the
trace, so measurement code never reaches into subsystem internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass
class TraceRecord:
    """One trace entry: virtual timestamp, category, free-form payload."""

    time: float
    category: str
    data: Dict[str, Any] = field(default_factory=dict)


class Counter:
    """A named monotonically-increasing numeric counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Trace:
    """Append-only trace plus a namespace of counters.

    Parameters
    ----------
    enabled:
        When False, :meth:`record` is a no-op (counters still work);
        used to strip tracing overhead out of large benchmark sweeps.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self.counters: Dict[str, Counter] = {}

    def record(self, time: float, category: str, **data: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if self.enabled:
            self.records.append(TraceRecord(time, category, data))

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        c = self.counters.get(name)
        if c is None:
            c = Counter(name)
            self.counters[name] = c
        return c

    def count(self, name: str, amount: float = 1.0) -> None:
        """Shorthand for ``trace.counter(name).add(amount)``."""
        self.counter(name).add(amount)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of counter ``name`` (``default`` if absent)."""
        c = self.counters.get(name)
        return c.value if c is not None else default

    # -- queries ---------------------------------------------------------
    def select(
        self,
        category: str,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Iterator[TraceRecord]:
        """All records of ``category`` with ``since <= time < until``."""
        for rec in self.records:
            if rec.category == category and since <= rec.time < until:
                yield rec

    def count_of(self, category: str, **time_window: float) -> int:
        """Number of records matching :meth:`select` filters."""
        return sum(1 for _ in self.select(category, **time_window))

    def series(
        self, category: str, key: str, **time_window: float
    ) -> List[Tuple[float, Any]]:
        """``(time, record.data[key])`` pairs for matching records."""
        return [
            (rec.time, rec.data[key])
            for rec in self.select(category, **time_window)
            if key in rec.data
        ]

    def last(self, category: str) -> Optional[TraceRecord]:
        """Most recent record of ``category``, or None."""
        for rec in reversed(self.records):
            if rec.category == category:
                return rec
        return None

    def clear(self) -> None:
        """Drop all records and counters."""
        self.records.clear()
        self.counters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Trace records={len(self.records)} counters={len(self.counters)}>"
