"""Structured trace recording and counters.

Every subsystem reports into a shared :class:`Trace`: checkpoint rounds,
failures, recoveries, tuple completions, bytes on each network.  The bench
harness then derives throughput/latency/data-volume metrics purely from the
trace, so measurement code never reaches into subsystem internals.

Storage is indexed per category: ``select``/``count_of``/``series`` touch
only the requested category's records (binary-searching the time window
when records arrived in time order) instead of scanning the whole run —
metric derivation is O(matches), not O(all records x queries).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.util.simlog import get_logger


class TraceRecord:
    """One trace entry: virtual timestamp, category, free-form payload."""

    __slots__ = ("time", "category", "data")

    def __init__(
        self, time: float, category: str, data: Optional[Dict[str, Any]] = None
    ) -> None:
        self.time = time
        self.category = category
        self.data: Dict[str, Any] = {} if data is None else data

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not TraceRecord:
            return NotImplemented
        return (
            self.time == other.time
            and self.category == other.category
            and self.data == other.data
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceRecord(time={self.time!r}, category={self.category!r}, data={self.data!r})"


class _CategoryIndex:
    """Per-category record store: parallel time list for window bisects."""

    __slots__ = ("records", "times", "sorted", "category")

    def __init__(self, category: str = "") -> None:
        self.category = category
        self.records: List[TraceRecord] = []
        self.times: List[float] = []
        #: Virtual time is monotone in practice; if a caller ever records
        #: out of order we fall back to a linear scan for this category.
        self.sorted = True

    def append(self, rec: TraceRecord) -> None:
        times = self.times
        if times and rec.time < times[-1]:
            if self.sorted:
                # Once per category: losing the bisect path silently would
                # hide an O(records) query cost *and* the likely caller
                # bug (recording with a stale timestamp).
                get_logger().warning(
                    "trace category %r received an out-of-order record "
                    "(%.6f after %.6f); windowed queries on it fall back "
                    "to linear scans", self.category, rec.time, times[-1],
                )
            self.sorted = False
        times.append(rec.time)
        self.records.append(rec)

    def window(self, since: float, until: float) -> Iterator[TraceRecord]:
        if self.sorted:
            lo = bisect_left(self.times, since) if since != float("-inf") else 0
            hi = (
                bisect_left(self.times, until)
                if until != float("inf")
                else len(self.records)
            )
            return iter(self.records[lo:hi])
        return (r for r in self.records if since <= r.time < until)

    def count(self, since: float, until: float) -> int:
        if self.sorted:
            lo = bisect_left(self.times, since) if since != float("-inf") else 0
            hi = (
                bisect_left(self.times, until)
                if until != float("inf")
                else len(self.records)
            )
            return hi - lo
        return sum(1 for r in self.records if since <= r.time < until)


class Counter:
    """A named monotonically-increasing numeric counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Trace:
    """Append-only trace plus a namespace of counters.

    Parameters
    ----------
    enabled:
        When False, :meth:`record` is a no-op (counters still work);
        used to strip tracing overhead out of large benchmark sweeps.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self.counters: Dict[str, Counter] = {}
        self._by_category: Dict[str, _CategoryIndex] = {}
        #: Live observers called with each appended record (telemetry).
        #: Kept off the hot path: recording without observers costs one
        #: truthiness check on this list.  Observers registered with a
        #: category filter live in ``_scoped`` and are only called for
        #: records of those categories — per-tuple categories make
        #: unconditional fan-out too expensive for filtered consumers.
        self._observers: List[Callable[[TraceRecord], None]] = []
        self._global_observers: List[Callable[[TraceRecord], None]] = []
        self._scoped: Dict[str, List[Callable[[TraceRecord], None]]] = {}

    def record(self, time: float, category: str, **data: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time, category, data)
        self.records.append(rec)
        index = self._by_category.get(category)
        if index is None:
            index = _CategoryIndex(category)
            self._by_category[category] = index
        index.append(rec)
        if self._observers:
            for observer in self._global_observers:
                observer(rec)
            scoped = self._scoped.get(category)
            if scoped is not None:
                for observer in scoped:
                    observer(rec)

    def add_observer(
        self,
        fn: Callable[[TraceRecord], None],
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        """Stream future records to ``fn`` (read-only tap; called
        synchronously inside :meth:`record`, so keep it cheap).  With
        ``categories``, ``fn`` only sees records of those categories —
        the dispatch cost for everything else is one dict lookup instead
        of a call.  A disabled trace records nothing and therefore
        observes nothing.
        """
        if fn in self._observers:
            raise ValueError("observer already registered")
        self._observers.append(fn)
        if categories is None:
            self._global_observers.append(fn)
        else:
            for category in categories:
                self._scoped.setdefault(category, []).append(fn)

    def remove_observer(self, fn: Callable[[TraceRecord], None]) -> None:
        """Detach an observer (unknown observers are ignored)."""
        try:
            self._observers.remove(fn)
        except ValueError:
            return
        try:
            self._global_observers.remove(fn)
        except ValueError:
            pass
        for category in list(self._scoped):
            observers = self._scoped[category]
            if fn in observers:
                observers.remove(fn)
                if not observers:
                    del self._scoped[category]

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``.

        Hot paths should resolve the handle once and call ``add`` on it,
        instead of paying this dict lookup per increment.
        """
        c = self.counters.get(name)
        if c is None:
            c = Counter(name)
            self.counters[name] = c
        return c

    def count(self, name: str, amount: float = 1.0) -> None:
        """Shorthand for ``trace.counter(name).add(amount)``."""
        self.counter(name).add(amount)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of counter ``name`` (``default`` if absent)."""
        c = self.counters.get(name)
        return c.value if c is not None else default

    # -- queries ---------------------------------------------------------
    def select(
        self,
        category: str,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Iterator[TraceRecord]:
        """All records of ``category`` with ``since <= time < until``."""
        index = self._by_category.get(category)
        if index is None:
            return iter(())
        return index.window(since, until)

    def count_of(self, category: str, **time_window: float) -> int:
        """Number of records matching :meth:`select` filters."""
        bad = set(time_window) - {"since", "until"}
        if bad:
            raise TypeError(f"count_of() got unexpected arguments {sorted(bad)}")
        index = self._by_category.get(category)
        if index is None:
            return 0
        return index.count(
            time_window.get("since", float("-inf")),
            time_window.get("until", float("inf")),
        )

    def series(
        self, category: str, key: str, **time_window: float
    ) -> List[Tuple[float, Any]]:
        """``(time, record.data[key])`` pairs for matching records."""
        return [
            (rec.time, rec.data[key])
            for rec in self.select(category, **time_window)
            if key in rec.data
        ]

    def last(self, category: str) -> Optional[TraceRecord]:
        """Most recently *recorded* entry of ``category``, or None."""
        index = self._by_category.get(category)
        if index is None or not index.records:
            return None
        return index.records[-1]

    def clear(self) -> None:
        """Drop all records; reset every counter to zero.

        Counters are reset *in place* (not discarded): hot paths hold
        pre-resolved :class:`Counter` handles, and dropping the objects
        would silently detach those handles from the registry.
        """
        self.records.clear()
        self._by_category.clear()
        for counter in self.counters.values():
            counter.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Trace records={len(self.records)} counters={len(self.counters)}>"
