"""The application registry: named apps with tunable parameter schemas.

Applications register a factory plus (optionally) a params dataclass:

    register_app("bcp", BCPApp, BCPParams, description="...")

and the rest of the platform refers to them by :class:`AppRef` — a
JSON-round-trippable reference that is either a bare name (``"bcp"``)
or a name with parameter overrides
(``{"name": "bcp", "params": {"n_counters": 8}}``).  Scenario matrices,
the sweep executor, the bench harness, and the perf suites all accept
refs, so any app axis of an experiment can vary application parameters
declaratively.

Refs are hashable and canonical: two refs with the same name and the
same parameter values compare equal regardless of dict ordering, and
:attr:`AppRef.key` is a deterministic human-readable case key
(``"bcp[n_counters=8]"``) used in sweep artifacts.

The built-in applications register themselves when :mod:`repro.apps`
is imported (which importing this module triggers, as its parent
package).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.app import AppSpec

#: Anything :meth:`AppRef.coerce` accepts.
AppRefLike = Union["AppRef", str, Mapping[str, Any]]


def _canonical_params(params: Optional[Mapping[str, Any]]) -> str:
    """Canonical compact JSON for a parameter mapping (sorted keys)."""
    if not params:
        return "{}"
    if not isinstance(params, Mapping):
        raise ValueError(f"app params must be a mapping, got {params!r}")
    for k in params:
        if not isinstance(k, str):
            raise ValueError(f"app params must have string keys, got {k!r}")
    try:
        return json.dumps(dict(params), sort_keys=True,
                          separators=(",", ":"), allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"app params must be JSON-serializable: {exc}") from exc


@dataclass(frozen=True)
class AppRef:
    """A (name, params) application reference.

    ``params_json`` holds the canonical JSON encoding of the parameter
    overrides, which makes refs hashable (matrix axes are frozen
    tuples) and equality order-insensitive.  Use :meth:`make` or
    :meth:`coerce` rather than the raw constructor.
    """

    name: str
    params_json: str = "{}"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("app ref needs a name")

    @classmethod
    def make(cls, name: str, params: Optional[Mapping[str, Any]] = None) -> "AppRef":
        """A ref for ``name`` with optional parameter overrides."""
        return cls(name=name, params_json=_canonical_params(params))

    @classmethod
    def coerce(cls, value: AppRefLike) -> "AppRef":
        """Accept a ref, a bare name, or a ``{"name", "params"}`` mapping."""
        if isinstance(value, AppRef):
            return value
        if isinstance(value, str):
            return cls.make(value)
        if isinstance(value, Mapping):
            extra = set(value) - {"name", "params"}
            if extra or "name" not in value:
                raise ValueError(
                    "app ref mapping must look like "
                    f'{{"name": ..., "params": {{...}}}}, got {dict(value)!r}'
                )
            return cls.make(value["name"], value.get("params"))
        raise ValueError(f"cannot interpret {value!r} as an app ref")

    # -- views ----------------------------------------------------------------
    @property
    def params(self) -> Dict[str, Any]:
        """The parameter overrides as a plain dict (possibly empty)."""
        return json.loads(self.params_json)

    @property
    def key(self) -> str:
        """Deterministic case key: ``"bcp"`` or ``"bcp[n_counters=8]"``.

        This is the string sweep artifacts carry in their ``"app"``
        field; bare-name refs keep the historical bare-string form.
        """
        params = self.params
        if not params:
            return self.name
        inner = ",".join(
            f"{k}={json.dumps(v, sort_keys=True, separators=(',', ':'))}"
            for k, v in sorted(params.items())
        )
        return f"{self.name}[{inner}]"

    def to_jsonable(self) -> Union[str, Dict[str, Any]]:
        """JSON form: the bare name when there are no params (so existing
        artifacts stay byte-identical), else the mapping form."""
        params = self.params
        if not params:
            return self.name
        return {"name": self.name, "params": params}

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.key


#: JSON-level type checks for scalar dataclass fields.  ``bool`` is a
#: subclass of ``int`` in Python, so it is excluded from the numeric
#: checks explicitly — ``{"n_counters": true}`` must not pass.
_SCALAR_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
}


def _field_type_name(field: "dataclasses.Field") -> str:
    """The field's annotation as a string (modules use PEP-563 strings)."""
    t = field.type
    return t if isinstance(t, str) else getattr(t, "__name__", str(t))


def _json_type_kind(type_name: str) -> Optional[str]:
    """Classify a field type for JSON refs: the scalar-check key, or
    ``"sequence"``, or None for code-only types.  ``Optional[...]`` is
    stripped first.  The single source of truth for both validation
    (:meth:`AppEntry._check_override`) and the ``app show`` schema
    (:meth:`AppEntry.json_tunable`)."""
    inner = type_name
    if inner.startswith("Optional[") and inner.endswith("]"):
        inner = inner[len("Optional["):-1]
    if inner in _SCALAR_CHECKS:
        return inner
    if inner.startswith(("Tuple[", "List[", "tuple", "list")):
        return "sequence"
    return None


@dataclass(frozen=True)
class AppEntry:
    """One registered application."""

    name: str
    #: ``factory(params) -> AppSpec``; ``params`` is an instance of
    #: ``params_cls`` or None for defaults.
    factory: Callable[..., AppSpec]
    #: The dataclass of tunable parameters (None = app takes none).
    params_cls: Optional[type] = None
    description: str = ""

    def make_params(self, overrides: Mapping[str, Any]) -> Any:
        """Build a validated params object from JSON-level overrides.

        Validates names *and* JSON-level value types against the params
        dataclass, so a bad ref fails here with a message naming the
        parameter — not later, deep inside graph building.
        """
        if not overrides:
            return None
        if self.params_cls is None:
            raise ValueError(
                f"app {self.name!r} takes no parameters, got {dict(overrides)!r}"
            )
        fields = {f.name: f for f in dataclasses.fields(self.params_cls)}
        unknown = sorted(set(overrides) - set(fields))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown} for app {self.name!r}; "
                f"tunable: {sorted(fields)}"
            )
        for name, value in overrides.items():
            self._check_override(name, _field_type_name(fields[name]), value)
        return self.params_cls(**overrides)

    def _check_override(self, param: str, type_name: str, value: Any) -> None:
        """Type-check one JSON-level override against its field type."""
        if value is None and type_name.startswith("Optional["):
            return
        kind = _json_type_kind(type_name)
        if kind is None:
            # Nested dataclasses (BCP's costs, SignalGuru's signal
            # model): construct them in code, not through a JSON ref.
            raise ValueError(
                f"parameter {param!r} of app {self.name!r} has type "
                f"{type_name} and is code-only (not expressible in a "
                "JSON app ref)"
            )
        if kind == "sequence":
            if not isinstance(value, (list, tuple)):
                raise ValueError(
                    f"parameter {param!r} of app {self.name!r} expects a "
                    f"list ({type_name}), got {value!r}"
                )
        elif not _SCALAR_CHECKS[kind](value):
            raise ValueError(
                f"parameter {param!r} of app {self.name!r} expects "
                f"{kind}, got {value!r}"
            )

    def json_tunable(self, field: "dataclasses.Field") -> bool:
        """Whether a params field can be set through a JSON app ref."""
        return _json_type_kind(_field_type_name(field)) is not None

    def create(self, ref: Optional[AppRefLike] = None) -> AppSpec:
        """A fresh :class:`AppSpec` instance for ``ref`` (default params
        when ``ref`` is None or carries no overrides)."""
        overrides = AppRef.coerce(ref).params if ref is not None else {}
        params = self.make_params(overrides)
        return self.factory(params) if params is not None else self.factory()

    def param_fields(self) -> List[Tuple[str, str, str]]:
        """``(name, type, default)`` rows for the tunable parameters.

        Code-only fields (nested dataclasses a JSON ref cannot express)
        are marked in the type column.
        """
        if self.params_cls is None:
            return []
        rows = []
        for f in dataclasses.fields(self.params_cls):
            type_name = _field_type_name(f)
            if not self.json_tunable(f):
                type_name += " (code-only)"
            if f.default is not dataclasses.MISSING:
                default = repr(f.default)
            elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                default = repr(f.default_factory())  # type: ignore[misc]
            else:
                default = "<required>"
            rows.append((f.name, type_name, default))
        return rows


_REGISTRY: Dict[str, AppEntry] = {}


def register_app(
    name: str,
    factory: Callable[..., AppSpec],
    params_cls: Optional[type] = None,
    description: str = "",
    replace: bool = False,
) -> AppEntry:
    """Register an application under ``name``; returns its entry."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"app {name!r} is already registered")
    entry = AppEntry(name=name, factory=factory, params_cls=params_cls,
                     description=description)
    _REGISTRY[name] = entry
    return entry


def unregister_app(name: str) -> None:
    """Drop a registered app (no-op if absent)."""
    _REGISTRY.pop(name, None)


def app_names() -> List[str]:
    """Registered application names, sorted."""
    return sorted(_REGISTRY)


def all_apps() -> List[AppEntry]:
    """Every registered entry, sorted by name."""
    return [_REGISTRY[n] for n in app_names()]


def get_app(name: str) -> AppEntry:
    """Look an application up by name.

    Raises :class:`ValueError` naming the known apps — the error a
    scenario with a typo'd app name surfaces.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(app_names()) or "<none>"
        raise ValueError(
            f"unknown app {name!r}; registered apps: {known}"
        ) from None


def create_app(ref: AppRefLike) -> AppSpec:
    """Instantiate a fresh app from any ref form (name/dict/:class:`AppRef`)."""
    ref = AppRef.coerce(ref)
    return get_app(ref.name).create(ref)
