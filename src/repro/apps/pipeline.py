"""Declarative pipeline builder: stages that compile to an AppSpec.

Applications describe themselves as an ordered tuple of
:class:`StageSpec` — each a (possibly parallel) linear chain of
operators with named upstream stages — plus placement groups and
workload bindings.  :class:`PipelineApp` compiles that description into
the three :class:`~repro.core.app.AppSpec` factories (graph, placement,
workloads), so a new workload family is a data structure, not a page of
graph-wiring code.

The compiler is deliberately order-faithful: operators are inserted in
stage order (instance-major for parallel chains) and edges are added in
a per-node order identical to hand-written ``chain``/``connect`` calls.
BCP and SignalGuru are ports onto this builder and their simulation
artifacts are guarded byte-for-byte by the golden-hash tests in
``tests/perf/``.

Connection rule between a stage and an upstream stage:

* equal widths > 1 — **paired**: instance *i* feeds instance *i*
  (SignalGuru's three independent filter chains);
* upstream width 1 — **fan-out**: the single exit op feeds every
  instance (BCP's dispatcher feeding its counters);
* stage width 1 — **fan-in**: every upstream exit feeds the single
  entry op (the counters converging on the boarding predictor);
* unequal widths > 1 — all-to-all (documented escape hatch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.operator import Operator
from repro.core.placement import Placement

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry

#: ``fn(rng, region_index) -> workload iterator or None`` (None = this
#: region does not bind the workload, e.g. upstream feeds exist only in
#: region 0).
WorkloadFn = Callable[["RngRegistry", int], Optional[Iterable]]


class PipelineError(ValueError):
    """Raised for malformed pipeline specifications."""


@dataclass(frozen=True)
class OpDef:
    """One operator slot of a stage's chain: a name plus a factory
    ``factory(op_name) -> Operator``."""

    name: str
    factory: Callable[[str], Operator]

    def __post_init__(self) -> None:
        if not self.name:
            raise PipelineError("operator def needs a name")


@dataclass(frozen=True)
class StageSpec:
    """One stage: a linear operator chain, replicated ``width`` times.

    ``upstream`` names the stages feeding this one (fan-in order is the
    listed order).  With ``width > 1`` the chain is instantiated
    ``width`` times and instance operator names gain the instance index
    suffix (``C`` -> ``C0..C3``); ``numbered=True`` forces the suffix
    even at width 1 (BCP's single-counter configurations keep the
    ``C0`` name the paper uses).
    """

    name: str
    ops: Tuple[OpDef, ...]
    width: int = 1
    upstream: Tuple[str, ...] = ()
    numbered: Optional[bool] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise PipelineError("stage needs a name")
        object.__setattr__(self, "ops", tuple(self.ops))
        object.__setattr__(self, "upstream", tuple(self.upstream))
        if not self.ops:
            raise PipelineError(f"stage {self.name!r} has no operators")
        if self.width < 1:
            raise PipelineError(f"stage {self.name!r} width must be >= 1")
        names = [od.name for od in self.ops]
        if len(set(names)) != len(names):
            raise PipelineError(f"stage {self.name!r} repeats operator names")

    @property
    def _numbered(self) -> bool:
        return self.width > 1 if self.numbered is None else self.numbered

    def op_name(self, op_def_name: str, instance: int) -> str:
        """The concrete operator name of one chain slot of one instance."""
        return f"{op_def_name}{instance}" if self._numbered else op_def_name

    def instance_op_names(self, instance: int) -> List[str]:
        """The operator names of instance ``instance``, chain order."""
        return [self.op_name(od.name, instance) for od in self.ops]

    def entry_name(self, instance: int) -> str:
        """First operator of an instance chain (receives upstream edges)."""
        return self.op_name(self.ops[0].name, instance)

    def exit_name(self, instance: int) -> str:
        """Last operator of an instance chain (feeds downstream stages)."""
        return self.op_name(self.ops[-1].name, instance)


def stage(
    name: str,
    factory: Callable[[str], Operator],
    upstream: Tuple[str, ...] = (),
    width: int = 1,
    numbered: Optional[bool] = None,
) -> StageSpec:
    """Convenience: a single-operator stage whose op name is the stage name."""
    return StageSpec(name=name, ops=(OpDef(name, factory),), width=width,
                     upstream=upstream, numbered=numbered)


@dataclass
class PipelineSpec:
    """A complete declarative application pipeline.

    * ``stages`` — ordered; upstream references must point at earlier
      stages, which makes the stage graph a DAG by construction.
    * ``groups`` — ordered placement groups of *stage* names; a group of
      width-``k`` stages expands to ``k`` phone groups, pairing instance
      *i* of every member stage (SignalGuru's per-chain phones).
    * ``workloads`` — ``(source op name, fn)`` pairs, bound in order;
      ``fn(rng, region_index)`` returns the iterator or None to skip.
    """

    name: str
    stages: Tuple[StageSpec, ...]
    groups: Tuple[Tuple[str, ...], ...]
    workloads: Tuple[Tuple[str, WorkloadFn], ...] = ()

    def __post_init__(self) -> None:
        self.stages = tuple(self.stages)
        self.groups = tuple(tuple(g) for g in self.groups)
        self.workloads = tuple(tuple(w) for w in self.workloads)  # type: ignore[assignment]
        if not self.name:
            raise PipelineError("pipeline needs a name")
        if not self.stages:
            raise PipelineError("pipeline has no stages")
        seen: Dict[str, StageSpec] = {}
        all_op_names: List[str] = []
        for st in self.stages:
            if st.name in seen:
                raise PipelineError(f"duplicate stage name {st.name!r}")
            for up in st.upstream:
                if up not in seen:
                    raise PipelineError(
                        f"stage {st.name!r} references unknown or later "
                        f"upstream stage {up!r}"
                    )
            seen[st.name] = st
            for i in range(st.width):
                all_op_names.extend(st.instance_op_names(i))
        if len(set(all_op_names)) != len(all_op_names):
            dupes = sorted({n for n in all_op_names if all_op_names.count(n) > 1})
            raise PipelineError(f"operator names collide across stages: {dupes}")
        self._by_name = seen
        # Placement groups: every stage exactly once, consistent widths.
        grouped: List[str] = []
        for group in self.groups:
            if not group:
                raise PipelineError("empty placement group")
            widths = set()
            for sname in group:
                if sname not in self._by_name:
                    raise PipelineError(f"placement group names unknown stage {sname!r}")
                widths.add(self._by_name[sname].width)
            if len(widths) != 1:
                raise PipelineError(
                    f"placement group {group!r} mixes stage widths {sorted(widths)}"
                )
            grouped.extend(group)
        if sorted(grouped) != sorted(self._by_name):
            missing = sorted(set(self._by_name) - set(grouped))
            extra = sorted({n for n in grouped if grouped.count(n) > 1})
            raise PipelineError(
                f"placement groups must cover every stage exactly once "
                f"(missing={missing}, repeated={extra})"
            )
        op_names = set(all_op_names)
        for op_name, _fn in self.workloads:
            if op_name not in op_names:
                raise PipelineError(f"workload bound to unknown operator {op_name!r}")

    # -- compilation -----------------------------------------------------------
    def build_graph(self) -> QueryGraph:
        """Compile to a fresh :class:`QueryGraph` (independent operators)."""
        g = QueryGraph()
        for st in self.stages:
            for i in range(st.width):
                for od in st.ops:
                    g.add_operator(od.factory(st.op_name(od.name, i)))
        for st in self.stages:
            for up_name in st.upstream:
                up = self._by_name[up_name]
                if up.width == st.width and st.width > 1:
                    pairs = [(i, i) for i in range(st.width)]
                else:
                    pairs = [(ui, di)
                             for di in range(st.width)
                             for ui in range(up.width)]
                for ui, di in pairs:
                    g.connect(up.exit_name(ui), st.entry_name(di))
            for i in range(st.width):
                names = st.instance_op_names(i)
                for a, b in zip(names, names[1:]):
                    g.connect(a, b)
        return g

    def expanded_groups(self) -> List[List[str]]:
        """The placement groups expanded to operator names, phone order."""
        out: List[List[str]] = []
        for group in self.groups:
            width = self._by_name[group[0]].width
            if width == 1:
                out.append([op
                            for sname in group
                            for op in self._by_name[sname].instance_op_names(0)])
            else:
                for i in range(width):
                    out.append([op
                                for sname in group
                                for op in self._by_name[sname].instance_op_names(i)])
        return out


class PipelineApp(AppSpec):
    """An :class:`AppSpec` compiled from a :class:`PipelineSpec`.

    Applications subclass this and hand the constructor their compiled
    pipeline; everything the system needs (graph, placement, workloads,
    phone budget) derives from it.
    """

    def __init__(self, pipeline: PipelineSpec) -> None:
        self.pipeline = pipeline
        self.name = pipeline.name

    def build_graph(self) -> QueryGraph:
        return self.pipeline.build_graph()

    def build_placement(self, phone_ids: List[str]) -> Placement:
        return Placement.pack_groups(self.pipeline.expanded_groups(), phone_ids)

    def compute_phones_needed(self) -> int:
        """One phone per expanded placement group."""
        return len(self.pipeline.expanded_groups())

    def build_workloads(self, rng: "RngRegistry", region_index: int):
        workloads = {}
        for op_name, fn in self.pipeline.workloads:
            workload = fn(rng, region_index)
            if workload is not None:
                workloads[op_name] = workload
        return workloads

    def describe(self) -> Dict[str, object]:
        """Structure summary for ``repro app show`` (no simulation state)."""
        graph = self.build_graph()
        operators = [
            {
                "name": op.name,
                "type": type(op).__name__,
                "state_bytes": op.state_size(),
                "source": op.is_source,
                "sink": op.is_sink,
            }
            for op in graph.operators()
        ]
        return {
            "name": self.name,
            "stages": [
                {"stage": st.name, "width": st.width,
                 "ops": [od.name for od in st.ops],
                 "upstream": list(st.upstream)}
                for st in self.pipeline.stages
            ],
            "operators": operators,
            "sources": graph.source_names(),
            "sinks": graph.sink_names(),
            "placement_groups": self.pipeline.expanded_groups(),
            "phones_needed": self.compute_phones_needed(),
        }
