"""Synthetic vision substrate: scenes, frames, and detection primitives.

The paper's cameras (bus-stop ceilings, windshield mounts) are replaced
by a generator of synthetic frames; the detectors then run *real* image
processing on those frames — integral images, Haar-like box features,
sliding windows, color thresholding, template correlation — so the
compute path an operator executes is genuine, while the *simulated* CPU
cost of each invocation is a calibrated function of frame size (the
Python/numpy wall time of a 2020s laptop says nothing about a 600 MHz
Cortex-A8).

Frames travel through the DSPS as :class:`FrameSpec` descriptors (seed +
scene parameters); an operator *renders* the frame on demand.  This keeps
simulated network payload sizes faithful (hundreds of KB) without
shipping megabytes of ndarray between simulation objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class FrameSpec:
    """A renderable synthetic frame.

    ``seed`` fully determines the pixels, so every replica/replay renders
    the identical frame.  ``n_targets`` is ground truth (faces in BCP,
    lit signal heads in SignalGuru) used to evaluate detector accuracy.
    """

    seed: int
    width: int = 160
    height: int = 120
    n_targets: int = 0
    #: Simulated encoded size on the wire, bytes.
    encoded_size: int = 200 * 1024

    def rng(self) -> np.random.Generator:
        """The frame's deterministic pixel RNG."""
        return np.random.default_rng(self.seed)


# -- rendering ---------------------------------------------------------------
#: Intensity of a rendered target blob vs. background noise.
TARGET_INTENSITY = 0.9
BACKGROUND_NOISE = 0.15
#: Rendered target half-size in pixels.
TARGET_HALF = 5


def render_gray(spec: FrameSpec) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Render a grayscale frame plus the ground-truth target centres.

    Targets are bright square blobs on a noisy background — a stand-in
    for HaarTraining's bright-cheek/dark-eye structure that box features
    can separate from noise.
    """
    rng = spec.rng()
    img = rng.random((spec.height, spec.width)) * BACKGROUND_NOISE
    centers: List[Tuple[int, int]] = []
    margin = 3 * TARGET_HALF
    for _ in range(spec.n_targets):
        for _attempt in range(50):
            cy = int(rng.integers(margin, spec.height - margin))
            cx = int(rng.integers(margin, spec.width - margin))
            if all(abs(cy - y) + abs(cx - x) > 4 * TARGET_HALF for y, x in centers):
                break
        centers.append((cy, cx))
        img[cy - TARGET_HALF:cy + TARGET_HALF + 1,
            cx - TARGET_HALF:cx + TARGET_HALF + 1] += TARGET_INTENSITY
    return np.clip(img, 0.0, 1.0), centers


def render_color(spec: FrameSpec, hue: str) -> np.ndarray:
    """Render an RGB frame with ``spec.n_targets`` blobs of a given hue.

    Hues: ``red``/``yellow``/``green`` (traffic-signal heads).
    """
    channel = {"red": 0, "yellow": None, "green": 1}[hue]
    gray, _centers = render_gray_cached(spec)
    img = np.stack([gray * 0.3] * 3, axis=-1)
    mask = gray > 0.5
    if channel is None:  # yellow = red + green
        img[mask, 0] = gray[mask]
        img[mask, 1] = gray[mask]
    else:
        img[mask, channel] = gray[mask]
    return img


# -- integral-image primitives ---------------------------------------------------
def integral_image(img: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero border row/column.

    ``ii[y, x]`` is the sum of ``img[:y, :x]``; any axis-aligned box sum
    is then four lookups — the trick that makes Haar cascades fast.
    """
    ii = np.zeros((img.shape[0] + 1, img.shape[1] + 1), dtype=np.float64)
    np.cumsum(np.cumsum(img, axis=0), axis=1, out=ii[1:, 1:])
    return ii


def box_sum(ii: np.ndarray, y0, x0, y1, x1):
    """Sum of ``img[y0:y1, x0:x1]`` from an integral image (vectorizable).

    Accepts scalars or equal-shaped index arrays.
    """
    return ii[y1, x1] - ii[y0, x1] - ii[y1, x0] + ii[y0, x0]


def sliding_box_sums(ii: np.ndarray, win: int, stride: int = 2) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All ``win``x``win`` window sums on a stride grid (fully vectorized).

    Returns ``(sums, ys, xs)`` where ``sums[i, j]`` is the window at
    ``(ys[i], xs[j])``.
    """
    h, w = ii.shape[0] - 1, ii.shape[1] - 1
    ys = np.arange(0, h - win + 1, stride)
    xs = np.arange(0, w - win + 1, stride)
    y0 = ys[:, None]
    x0 = xs[None, :]
    sums = box_sum(ii, y0, x0, y0 + win, x0 + win)
    return sums, ys, xs


# -- detection helpers -----------------------------------------------------------
def detect_blobs(
    img: np.ndarray,
    win: int = 2 * TARGET_HALF + 1,
    stride: int = 2,
    threshold: float = 0.55,
) -> List[Tuple[int, int]]:
    """Greedy bright-blob detector over integral-image window means.

    A window fires when its mean intensity clears ``threshold``;
    overlapping detections are suppressed greedily (strongest first).
    Used by BCP's counters and tested against planted ground truth.
    """
    ii = integral_image(img)
    sums, ys, xs = sliding_box_sums(ii, win, stride)
    means = sums / (win * win)
    candidates = np.argwhere(means > threshold)
    if candidates.size == 0:
        return []
    strengths = means[candidates[:, 0], candidates[:, 1]]
    order = np.argsort(strengths)[::-1]
    picked: List[Tuple[int, int]] = []
    for idx in order:
        cy = int(ys[candidates[idx, 0]]) + win // 2
        cx = int(xs[candidates[idx, 1]]) + win // 2
        # Suppress within a full window radius: two windows overlapping the
        # same blob must not yield two detections.
        if all(abs(cy - y) >= win or abs(cx - x) >= win for y, x in picked):
            picked.append((cy, cx))
    return picked


def circularity(patch: np.ndarray) -> float:
    """How circular a bright patch is (1.0 = disc, lower = other shapes).

    Correlates the thresholded patch with a centered disc template —
    SignalGuru's shape filter ("circle or arrow").
    """
    if patch.size == 0:
        return 0.0
    h, w = patch.shape
    yy, xx = np.mgrid[0:h, 0:w]
    r = min(h, w) / 2.0
    disc = ((yy - (h - 1) / 2.0) ** 2 + (xx - (w - 1) / 2.0) ** 2) <= r * r
    # Midpoint threshold: robust when the patch is mostly target (a
    # mean+sigma cut declares a uniform bright patch all-background).
    bright = patch > (float(patch.min()) + float(patch.max())) / 2.0
    inter = np.logical_and(disc, bright).sum()
    union = np.logical_or(disc, bright).sum()
    return float(inter) / float(union) if union else 0.0


# -- memoized pure-function layer --------------------------------------------
# Rendering and detection are pure functions of the FrameSpec (each frame
# carries its own pixel seed; no shared RNG stream is consumed), so their
# results can be cached without perturbing determinism: a hit returns the
# bit-identical value a recompute would.  Replicated chains (rep-k), the
# SignalGuru color->shape double render, and post-recovery replays all
# re-request the same frames, which made redundant rendering one of the
# largest CPU sinks of a full sweep.
#
# Rendered images are large (~150 KB gray / ~450 KB color), so the image
# caches stay small; the derived-result caches are tiny tuples and can be
# generous.

_IMAGE_CACHE_SIZE = 32
_RESULT_CACHE_SIZE = 1 << 16


@lru_cache(maxsize=_IMAGE_CACHE_SIZE)
def render_gray_cached(spec: FrameSpec) -> Tuple[np.ndarray, Tuple[Tuple[int, int], ...]]:
    """Memoized :func:`render_gray`; the image is returned read-only."""
    img, centers = render_gray(spec)
    img.setflags(write=False)
    return img, tuple(centers)


@lru_cache(maxsize=_IMAGE_CACHE_SIZE)
def render_color_cached(spec: FrameSpec, hue: str) -> np.ndarray:
    """Memoized :func:`render_color`; the image is returned read-only."""
    img = render_color(spec, hue)
    img.setflags(write=False)
    return img


def flatten_channels(img: np.ndarray) -> np.ndarray:
    """Per-pixel max over the color channels, same values as
    ``img.max(axis=-1)``.

    A reduction over the short contiguous channel axis is pathologically
    slow in numpy (~25x slower than three elementwise maximums on our
    frame sizes); the chained form is bit-identical because ``maximum``
    is exact.
    """
    flat = np.maximum(img[..., 0], img[..., 1])
    for c in range(2, img.shape[-1]):
        flat = np.maximum(flat, img[..., c], out=flat)
    return flat


@lru_cache(maxsize=_RESULT_CACHE_SIZE)
def count_blobs(spec: FrameSpec) -> int:
    """Number of detected blobs in the frame's grayscale rendering.

    Equivalent to ``len(detect_blobs(render_gray(spec)[0]))``; this is
    BCP's face-count path, shared across replicas and replays.
    """
    img, _centers = render_gray_cached(spec)
    return len(detect_blobs(img))


@lru_cache(maxsize=_RESULT_CACHE_SIZE)
def channel_maxima(spec: FrameSpec, hue: str) -> Tuple[float, float]:
    """``(red_max, green_max)`` of the frame's color rendering."""
    img = render_color_cached(spec, hue)
    return float(img[..., 0].max()), float(img[..., 1].max())


@lru_cache(maxsize=_RESULT_CACHE_SIZE)
def brightest_blob(
    spec: FrameSpec, hue: str, half: int = 6
) -> Optional[Tuple[int, int, float]]:
    """Strongest blob of the flattened color frame plus its circularity.

    Returns ``(cy, cx, circularity)`` or None when no blob clears the
    detector threshold — exactly the values SignalGuru's shape filter
    used to recompute per replica from a fresh render.
    """
    img = flatten_channels(render_color_cached(spec, hue))
    blobs = detect_blobs(img)
    if not blobs:
        return None
    cy, cx = blobs[0]
    patch = img[max(0, cy - half):cy + half, max(0, cx - half):cx + half]
    return cy, cx, circularity(patch)


def clear_vision_caches() -> None:
    """Drop all memoized rendering/detection results (tests, memory)."""
    render_gray_cached.cache_clear()
    render_color_cached.cache_clear()
    count_blobs.cache_clear()
    channel_maxima.cache_clear()
    brightest_blob.cache_clear()
