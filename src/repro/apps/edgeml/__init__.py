"""EdgeML: split-DNN edge inference (the third workload family)."""

from repro.apps.edgeml.app import EdgeMLApp, EdgeMLParams

__all__ = ["EdgeMLApp", "EdgeMLParams"]
