"""EdgeML's operators: a split DNN inference pipeline on phones.

S0: consensus from the previous region   S: the camera source
F0..F{k-1}: network partitions (each holds its layers' weights as
            checkpointable state and emits the boundary activation)
P: online nearest-prototype classifier   K: sink (to the next region)

The compute is real in the repo's usual sense: the first partition
renders the synthetic frame and average-pools it into a feature vector,
and every partition applies deterministic residual random-projection
layers (weights derived from fixed seeds, as a pretrained network's
would be).  What the fault-tolerance schemes feel is the *shape* of the
workload: multi-megabyte per-operator weight state and inter-stage
tensors whose size depends on where the network is split —
sparse_framework's trade-off, scripted.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.vision import FrameSpec, render_gray
from repro.checkpoint import snapshots
from repro.core.operator import Operator, OperatorContext, SinkOperator, SourceOperator
from repro.core.tuples import StreamTuple

#: Dimension of the inter-stage activation vector (4x4 pooled frame).
FEATURE_DIM = 16
#: Seed base for the deterministic "pretrained" layer weights.
WEIGHT_SEED = 0xED6E


def pooled_features(spec: FrameSpec) -> np.ndarray:
    """Render a frame and average-pool it into a FEATURE_DIM vector.

    A 4x4 grid of block means over the grayscale render — the input
    embedding the first partition feeds the network.  Brighter blocks
    mean more targets, so the vector genuinely carries the class signal.
    """
    img, _centers = render_gray(spec)
    h, w = img.shape
    gh, gw = h // 4, w // 4
    pooled = img[: gh * 4, : gw * 4].reshape(4, gh, 4, gw).mean(axis=(1, 3))
    return pooled.reshape(-1).astype(np.float64)


def layer_weights(layer: int) -> np.ndarray:
    """The fixed random-projection matrix of one global layer index."""
    gen = np.random.default_rng(WEIGHT_SEED + layer)
    return gen.normal(0.0, 1.0 / np.sqrt(FEATURE_DIM),
                      size=(FEATURE_DIM, FEATURE_DIM))


def apply_layers(features: np.ndarray, layers: Sequence[int]) -> np.ndarray:
    """Run ``features`` through the given global layers (residual tanh)."""
    feat = features
    for layer in layers:
        feat = feat + np.tanh(layer_weights(layer) @ feat)
    return feat


def weight_blob(layers: Sequence[int], weight_bytes: int) -> np.ndarray:
    """A partition's full-resolution weight tensor, deterministic in its
    layer range and physically sized to its simulated ``weight_bytes``.

    The projection matrices of :func:`layer_weights` are the *logic* of
    the partition; this blob is the state a checkpoint must actually
    hold in host memory — megabytes per stage, constant for the whole
    run.  It is returned frozen (read-only): every snapshot of an
    unchanged partition shares this one buffer.
    """
    gen = np.random.default_rng(WEIGHT_SEED + 7919 * (int(layers[0]) + 1))
    blob = gen.standard_normal(max(1, weight_bytes // 8))
    blob.flags.writeable = False
    return blob


class UplinkSource(SourceOperator):
    """S0: consensus predictions arriving from the previous region."""

    def __init__(self, name: str = "S0") -> None:
        super().__init__(name)


class CameraFeed(SourceOperator):
    """S: the on-device camera producing frames to classify."""

    def __init__(self, name: str = "S") -> None:
        super().__init__(name)


class PartitionStage(Operator):
    """F{k}: one partition of the split network.

    Holds its layers' weights as checkpointable state (the dominant
    bytes a scheme must preserve) plus a small running activation
    calibration that mutates with every frame — so a restored replica
    is only correct if the checkpoint actually carried the state.
    """

    def __init__(
        self,
        name: str,
        layers: Sequence[int],
        weight_bytes: int,
        out_tensor_bytes: int,
        cost_s: float,
    ) -> None:
        super().__init__(name)
        if not layers:
            raise ValueError(f"partition {name!r} has no layers")
        self.layers: Tuple[int, ...] = tuple(int(l) for l in layers)
        self._weight_bytes = int(weight_bytes)
        self._out_bytes = int(out_tensor_bytes)
        self._cost = cost_s
        # The weight matrices are fixed constants of the layer indices;
        # draw them once, not per processed frame.
        self._mats = [layer_weights(l) for l in self.layers]
        # The multi-MB weight state is materialized lazily: fault-free
        # runs under the no-FT scheme never snapshot, so they never pay
        # the allocation.
        self._weights: Optional[np.ndarray] = None
        self.frames_inferred = 0
        self.activation_mean = 0.0

    @property
    def weights(self) -> np.ndarray:
        """The checkpointable weight tensor (frozen, built on first use)."""
        if self._weights is None:
            self._weights = weight_blob(self.layers, self._weight_bytes)
        return self._weights

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = tup.payload
        if "features" in data:
            feat = np.asarray(data["features"], dtype=np.float64)
        else:
            feat = pooled_features(data["frame"])
        for mat in self._mats:
            feat = feat + np.tanh(mat @ feat)
        self.frames_inferred += 1
        self.activation_mean += (
            float(feat.mean()) - self.activation_mean
        ) / self.frames_inferred
        out = {"features": feat, "true_class": data["true_class"]}
        return [tup.derive(out, self._out_bytes)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._weight_bytes

    def snapshot(self) -> Any:
        self.weights  # materialize before sharing
        return {
            "weights": snapshots.snap_attr(self, "_weights"),
            "frames_inferred": self.frames_inferred,
            "activation_mean": self.activation_mean,
        }

    def restore(self, state: Any) -> None:
        if not state:
            self.frames_inferred = 0
            self.activation_mean = 0.0
            return
        w = state.get("weights")
        if w is not None:
            self._weights = snapshots.adopt_array(w, dtype=np.float64)
        self.frames_inferred = int(state["frames_inferred"])
        self.activation_mean = float(state["activation_mean"])


class PrototypeClassifier(Operator):
    """P: online nearest-prototype classification head.

    Maintains a running mean feature vector per class (updated from the
    ground-truth label after predicting, like the SVM predictor's
    online training) and predicts the nearest prototype.  The upstream
    region's consensus (arriving via S0) acts as a prior: it answers
    cold-start frames before any local training and breaks near-ties
    between prototypes.  The prototypes are the head's checkpointable
    state; accuracy counters ride along so a run's classification
    quality is measurable.
    """

    def __init__(self, name: str, n_classes: int, cost_s: float,
                 state_size: int = 64 * 1024) -> None:
        super().__init__(name)
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_classes = n_classes
        self._cost = cost_s
        self._state_size = int(state_size)
        self.prototypes = np.zeros((n_classes, FEATURE_DIM))
        self.counts = np.zeros(n_classes, dtype=np.int64)
        self.predictions = 0
        self.correct = 0
        #: Votes received from the previous region's consensus (S0).
        self.upstream_votes = np.zeros(n_classes, dtype=np.int64)

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = tup.payload
        if "features" not in data:
            # An upstream region's consensus: refresh the prior, emit
            # nothing (the local camera drives this region's output rate).
            cls = int(data.get("class", 0)) % self.n_classes
            self.upstream_votes = snapshots.writable(self.upstream_votes)
            self.upstream_votes[cls] += 1
            return []
        feat = np.asarray(data["features"], dtype=np.float64)
        true_class = int(data["true_class"]) % self.n_classes
        trained = self.counts > 0
        if trained.any():
            dists = np.linalg.norm(self.prototypes - feat, axis=1)
            dists[~trained] = np.inf
            best = float(dists.min())
            near = np.flatnonzero(dists <= best * 1.05)
            if len(near) > 1 and self.upstream_votes.any():
                # Near-tie: the upstream region's consensus breaks it.
                predicted = int(near[np.argmax(self.upstream_votes[near])])
            else:
                predicted = int(np.argmin(dists))
        elif self.upstream_votes.any():
            # Cold start with an upstream prior: follow the consensus.
            predicted = int(np.argmax(self.upstream_votes))
        else:
            predicted = 0
        self.predictions += 1
        if predicted == true_class:
            self.correct += 1
        # Online supervised update from the labelled frame (un-share
        # first: a checkpoint may hold these arrays).
        self.counts = snapshots.writable(self.counts)
        self.prototypes = snapshots.writable(self.prototypes)
        self.counts[true_class] += 1
        self.prototypes[true_class] += (
            feat - self.prototypes[true_class]
        ) / self.counts[true_class]
        out = {
            "class": predicted,
            "true_class": true_class,
            "correct": predicted == true_class,
        }
        return [tup.derive(out, 1024)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    @property
    def accuracy(self) -> float:
        """Running top-1 accuracy over everything classified so far."""
        return self.correct / self.predictions if self.predictions else 0.0

    def snapshot(self) -> Any:
        return {
            "prototypes": snapshots.snap_attr(self, "prototypes"),
            "counts": snapshots.snap_attr(self, "counts"),
            "predictions": self.predictions,
            "correct": self.correct,
            "upstream_votes": snapshots.snap_attr(self, "upstream_votes"),
        }

    def restore(self, state: Any) -> None:
        if not state:
            self.prototypes = np.zeros((self.n_classes, FEATURE_DIM))
            self.counts = np.zeros(self.n_classes, dtype=np.int64)
            self.predictions = self.correct = 0
            self.upstream_votes = np.zeros(self.n_classes, dtype=np.int64)
            return
        self.prototypes = snapshots.adopt_array(state["prototypes"], dtype=np.float64)
        self.counts = snapshots.adopt_array(state["counts"], dtype=np.int64)
        self.predictions = int(state["predictions"])
        self.correct = int(state["correct"])
        self.upstream_votes = snapshots.adopt_array(
            state["upstream_votes"], dtype=np.int64
        )


class InferenceSink(SinkOperator):
    """K: publishes predictions and forwards them to the next region."""

    def __init__(self, name: str = "K") -> None:
        super().__init__(name)
