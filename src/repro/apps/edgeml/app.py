"""The EdgeML application assembly: split-DNN edge inference.

The third workload family (after BCP and SignalGuru): a camera feeds a
neural network that is *partitioned* across the region's phones —
sparse_framework-style split inference.  Each partition operator owns
its layers' weights as checkpointable state, so the app stresses
fault-tolerance schemes along an axis the other two do not: large
per-operator state (megabytes of weights per phone) and heavy
inter-stage tensors whose size depends on the split point.

The layer profile follows the classic convnet shape: weights *grow*
with depth while activations *shrink*, so splitting shallow means
little on-phone state but fat tensors on the WiFi, and splitting deep
means the opposite — exactly the trade-off a scenario can sweep by
parameterizing ``n_stages``/``split_points`` through app refs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.apps.edgeml.operators import (
    CameraFeed,
    InferenceSink,
    PartitionStage,
    PrototypeClassifier,
    UplinkSource,
)
from repro.apps.pipeline import PipelineApp, PipelineSpec, stage
from repro.apps.vision import FrameSpec
from repro.util.units import KB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


@dataclass
class EdgeMLParams:
    """Workload, network-shape, and cost calibration.

    Defaults keep the slowest partition lightly below the camera rate
    (3 layers x 0.3 s < 2.0 s period) — the same "lightly saturated"
    operating point as the other two apps — with ≈4.6 MB of total
    weight state spread over four partitions.
    """

    #: Mean camera inter-frame interval, seconds.
    camera_period_s: float = 2.0
    #: Encoded frame size on the wire.
    frame_size: int = 140 * KB
    #: Total layers in the network.
    n_layers: int = 12
    #: Number of partitions the network is split into.
    n_stages: int = 4
    #: Explicit split boundaries (layer indices, strictly increasing,
    #: ``n_stages - 1`` of them); None = split evenly.
    split_points: Optional[Tuple[int, ...]] = None
    #: Weight bytes of layer 0; deeper layers grow geometrically.
    base_weights: int = 64 * KB
    weights_growth: float = 1.3
    #: Activation bytes entering layer 0; deeper activations shrink.
    base_tensor: int = 96 * KB
    tensor_shrink: float = 0.8
    #: Floor for the inter-stage tensor size.
    min_tensor: int = 4 * KB
    #: Reference CPU seconds per layer.
    layer_cost_s: float = 0.3
    #: Reference CPU seconds for the classifier head.
    classifier_cost_s: float = 0.25
    #: Classes the head distinguishes (scene target counts 0..n-1).
    n_classes: int = 10
    #: How many frames the camera produces.
    n_frames: int = 100_000

    def __post_init__(self) -> None:
        if self.camera_period_s <= 0:
            raise ValueError("camera period must be positive")
        if self.n_layers < 1:
            raise ValueError("need at least one layer")
        if not 1 <= self.n_stages <= self.n_layers:
            raise ValueError("n_stages must be in [1, n_layers]")
        if self.n_classes < 2:
            raise ValueError("need at least two classes")
        if self.weights_growth <= 0 or self.tensor_shrink <= 0:
            raise ValueError("growth/shrink factors must be positive")
        if self.split_points is not None:
            self.split_points = tuple(int(s) for s in self.split_points)
            if len(self.split_points) != self.n_stages - 1:
                raise ValueError(
                    f"need {self.n_stages - 1} split point(s) for "
                    f"{self.n_stages} stages, got {len(self.split_points)}"
                )
            bounds = (0,) + self.split_points + (self.n_layers,)
            if any(a >= b for a, b in zip(bounds, bounds[1:])):
                raise ValueError(
                    "split points must be strictly increasing within "
                    f"(0, {self.n_layers})"
                )

    # -- derived profile -----------------------------------------------------
    def stage_layers(self) -> List[Tuple[int, int]]:
        """Per-partition ``(first_layer, end_layer)`` half-open ranges."""
        if self.split_points is not None:
            bounds = (0,) + self.split_points + (self.n_layers,)
        else:
            bounds = tuple(
                round(k * self.n_layers / self.n_stages)
                for k in range(self.n_stages + 1)
            )
        return list(zip(bounds, bounds[1:]))

    def layer_weight_bytes(self, layer: int) -> int:
        """Weight bytes of one global layer (grows with depth)."""
        return int(self.base_weights * self.weights_growth ** layer)

    def layer_tensor_bytes(self, layer: int) -> int:
        """Activation bytes *after* one global layer (shrinks with depth)."""
        return max(self.min_tensor,
                   int(self.base_tensor * self.tensor_shrink ** (layer + 1)))

    def stage_profile(self) -> List[dict]:
        """Per-partition summary: layers, weight bytes, out-tensor bytes,
        CPU cost — the numbers ``repro app show edgeml`` reports."""
        profile = []
        for first, end in self.stage_layers():
            layers = list(range(first, end))
            profile.append({
                "layers": layers,
                "weight_bytes": sum(self.layer_weight_bytes(l) for l in layers),
                "out_tensor_bytes": self.layer_tensor_bytes(end - 1),
                "cost_s": self.layer_cost_s * len(layers),
            })
        return profile


class EdgeMLApp(PipelineApp):
    """Partitioned DNN inference as a compiled pipeline."""

    name = "edgeml"

    def __init__(self, params: EdgeMLParams | None = None) -> None:
        self.params = params or EdgeMLParams()
        p = self.params
        profile = p.stage_profile()

        def partition_factory(info):
            return lambda n: PartitionStage(
                n, layers=info["layers"], weight_bytes=info["weight_bytes"],
                out_tensor_bytes=info["out_tensor_bytes"], cost_s=info["cost_s"],
            )

        stages = [stage("S0", UplinkSource), stage("S", CameraFeed)]
        for k, info in enumerate(profile):
            upstream = "S" if k == 0 else f"F{k - 1}"
            stages.append(stage(f"F{k}", partition_factory(info),
                                upstream=(upstream,)))
        stages.append(stage(
            "P",
            lambda n: PrototypeClassifier(n, n_classes=p.n_classes,
                                          cost_s=p.classifier_cost_s),
            # S0 first: the upstream consensus is a prior, the local
            # feature stream drives the output rate.
            upstream=("S0", f"F{p.n_stages - 1}"),
        ))
        stages.append(stage("K", InferenceSink, upstream=("P",)))

        groups = tuple(
            [("S0", "S")]
            + [(f"F{k}",) for k in range(p.n_stages)]
            + [("P", "K")]
        )
        super().__init__(PipelineSpec(
            name="edgeml",
            stages=tuple(stages),
            groups=groups,
            workloads=(("S", self._camera),),
        ))

    # -- workloads -------------------------------------------------------------
    def _camera(self, rng: "RngRegistry", region_index: int):
        """Frames whose target count is the ground-truth class label."""
        p = self.params
        gen = rng.stream(f"edgeml.camera.{region_index}")
        for i in range(p.n_frames):
            wait = float(gen.exponential(p.camera_period_s))
            true_class = int(gen.integers(0, p.n_classes))
            spec = FrameSpec(
                seed=int(gen.integers(0, 2**31)),
                n_targets=true_class,
                encoded_size=p.frame_size,
            )
            payload = {"frame": spec, "true_class": true_class}
            yield (wait, payload, p.frame_size)
