"""SignalGuru — the paper's second driving application (Fig. 3)."""

from repro.apps.signalguru.app import SignalGuruApp, SignalGuruParams
from repro.apps.signalguru.signal_model import TrafficSignal
from repro.apps.signalguru.svm import LinearSVM

__all__ = ["LinearSVM", "SignalGuruApp", "SignalGuruParams", "TrafficSignal"]
