"""SignalGuru's operators (Fig. 3).

S0: data from previous intersection     S1: smartphone camera frames
C0..C2: color filters                   A0..A2: shape filters
M0..M2: motion filters                  V: voting filter
G: group                                P: SVM prediction
K: sink (to next intersection)

The three C->A->M chains run in parallel on different phones; S1 spreads
frames across them round-robin.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.apps.signalguru.svm import LinearSVM
from repro.apps.vision import FrameSpec, brightest_blob, channel_maxima
from repro.checkpoint import snapshots
from repro.core.operator import Operator, OperatorContext, SinkOperator, SourceOperator
from repro.core.tuples import StreamTuple
from repro.util.units import KB

#: Feature layout for the SVM: one-hot phase (3) + elapsed + cycle pos.
SVM_FEATURES = 5


def signal_features(phase: str, elapsed: float, cycle_s: float) -> np.ndarray:
    """Feature vector for the transition predictor."""
    onehot = {"red": (1.0, 0.0, 0.0), "green": (0.0, 1.0, 0.0), "yellow": (0.0, 0.0, 1.0)}
    a, b, c = onehot[phase]
    return np.array([a, b, c, elapsed / max(1.0, cycle_s), elapsed], dtype=np.float64)


class CameraSource(SourceOperator):
    """S1: windshield frames, spread round-robin across the filter chains."""

    def __init__(self, name: str = "S1") -> None:
        super().__init__(name)

    def route(self, out: StreamTuple, downstream: List[str]) -> List[str]:
        if not downstream:
            return []
        return [downstream[out.source_seq % len(downstream)]]


class IntersectionSource(SourceOperator):
    """S0: transition predictions from the previous intersection."""

    def __init__(self, name: str = "S0") -> None:
        super().__init__(name)


class ColorFilter(Operator):
    """C_i: find signal-colored bright regions in the frame.

    Renders the synthetic frame and thresholds the dominant channel —
    SignalGuru's "color (red, yellow or green) filtering".
    """

    def __init__(self, name: str, cost_s: float = 1.6) -> None:
        super().__init__(name)
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = tup.payload
        spec: FrameSpec = data["frame"]
        color: str = data["true_color"]
        # Dominant-channel detection: which hue shows lit blobs?  The
        # channel maxima are memoized per (frame, hue) — replicas and the
        # downstream shape filter reuse the same rendering.
        red_max, green_max = channel_maxima(spec, color)
        scores = {"red": red_max - green_max, "green": green_max - red_max}
        yellowness = min(red_max, green_max)
        if yellowness > 0.6:
            detected = "yellow"
        elif scores["red"] > 0.2:
            detected = "red"
        elif scores["green"] > 0.2:
            detected = "green"
        else:
            return []  # no signal visible in this frame
        out = dict(data)
        out["detected_color"] = detected
        return [tup.derive(out, 24 * KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost


class ShapeFilter(Operator):
    """A_i: keep only circular (or arrow) candidates — Fig. 3's shape stage."""

    def __init__(self, name: str, cost_s: float = 0.7, min_circularity: float = 0.25) -> None:
        super().__init__(name)
        self._cost = cost_s
        self.min_circularity = min_circularity

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = tup.payload
        spec: FrameSpec = data["frame"]
        hit = brightest_blob(spec, data["true_color"])
        if hit is None:
            return []
        _cy, _cx, circ = hit
        if circ < self.min_circularity:
            return []
        out = dict(data)
        out["circularity"] = circ
        return [tup.derive(out, 8 * KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost


class MotionFilter(Operator):
    """M_i: reject moving detections — "traffic lights are always fixed".

    Stateful: remembers the last detection position per chain and drops
    candidates that jumped (reflections, other cars' lights).
    """

    def __init__(self, name: str, cost_s: float = 0.4, max_jump: float = 25.0,
                 state_size: int = 256 * KB) -> None:
        super().__init__(name)
        self._cost = cost_s
        self.max_jump = max_jump
        self._state_size = state_size
        self.last_pos: Optional[tuple] = None

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        pos = data.get("position", (0.0, 0.0))
        if self.last_pos is not None:
            dy = pos[0] - self.last_pos[0]
            dx = pos[1] - self.last_pos[1]
            if (dy * dy + dx * dx) ** 0.5 > self.max_jump:
                self.last_pos = pos
                return []
        self.last_pos = pos
        return [tup.derive(data, 4 * KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return {"last_pos": self.last_pos}

    def restore(self, state: Any) -> None:
        self.last_pos = state["last_pos"] if state else None


class VotingFilter(Operator):
    """V: majority vote over the recent window of per-frame detections.

    Collaborative sensing: frames from many phones disagree; the vote
    smooths misdetections before the learner sees them.
    """

    def __init__(self, name: str = "V", window: int = 5, cost_s: float = 0.1,
                 state_size: int = 512 * KB) -> None:
        super().__init__(name)
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._cost = cost_s
        self._state_size = state_size
        self.recent: List[str] = []

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        self.recent.append(data["detected_color"])
        if len(self.recent) > self.window:
            self.recent.pop(0)
        # dict.fromkeys gives first-seen order for the tie-break; a bare
        # set() here made tied votes follow the process's str-hash seed,
        # so the same run produced different artifacts across invocations.
        winner = max(dict.fromkeys(self.recent), key=self.recent.count)
        if winner != data["detected_color"]:
            return []  # outvoted: discard this detection
        data["voted_color"] = winner
        return [tup.derive(data, 2 * KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return snapshots.freeze_state({"recent": self.recent})

    def restore(self, state: Any) -> None:
        self.recent = list(state["recent"]) if state else []


class GroupOperator(Operator):
    """G: group observations into phase intervals for the learner.

    Accumulates (color, capture time) pairs; when the color flips, emits
    one grouped observation of the finished phase with its measured
    duration — the SVM's training example.
    """

    def __init__(self, name: str = "G", cost_s: float = 0.1,
                 state_size: int = 1024 * KB) -> None:
        super().__init__(name)
        self._cost = cost_s
        self._state_size = state_size
        self.current_color: Optional[str] = None
        self.phase_start: float = 0.0

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        color = data.get("voted_color") or data.get("phase")
        if color is None:
            return []  # upstream-region advisories without an observation
        data["voted_color"] = color
        t = data.get("capture_time", ctx.now)
        outputs: List[StreamTuple] = []
        if self.current_color is None:
            self.current_color = color
            self.phase_start = t
        elif color != self.current_color:
            duration = max(0.0, t - self.phase_start)
            grouped = {
                "phase": self.current_color,
                "duration": duration,
                "next_color": color,
                "capture_time": t,
                "true_tta": data.get("true_tta"),
            }
            outputs.append(tup.derive(grouped, 2 * KB))
            self.current_color = color
            self.phase_start = t
        # Local camera observations also flow to the predictor for
        # inference; upstream-region advisories only update the grouping
        # state (otherwise each region would compound the previous
        # region's output rate onto its own).
        if "detected_color" in data:
            data["phase_elapsed"] = t - self.phase_start
            outputs.append(tup.derive(data, 2 * KB))
        return outputs

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return {"current_color": self.current_color, "phase_start": self.phase_start}

    def restore(self, state: Any) -> None:
        if state:
            self.current_color = state["current_color"]
            self.phase_start = state["phase_start"]
        else:
            self.current_color = None
            self.phase_start = 0.0


class SVMPredictor(Operator):
    """P: online SVM predicting whether the signal flips within the horizon.

    Binary formulation (flips within ``horizon_s``: yes/no), trained
    online from grouped observations; the decision margin doubles as a
    soft time-to-transition score sent downstream.
    """

    def __init__(self, name: str = "P", horizon_s: float = 10.0, cost_s: float = 0.5,
                 state_size: int = 2048 * KB, cycle_s: float = 79.0) -> None:
        super().__init__(name)
        self.horizon_s = horizon_s
        self._cost = cost_s
        self._state_size = state_size
        self.cycle_s = cycle_s
        self.svm = LinearSVM(SVM_FEATURES, lam=1e-2, seed=7)
        self.trained = 0

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        if "duration" in data:  # a grouped observation: a training example
            phase = data["phase"]
            # The phase lasted `duration`; at elapsed e the true
            # time-to-transition was duration - e.  Generate two training
            # points per group (one each side of the horizon).
            for elapsed in (max(0.0, data["duration"] - self.horizon_s / 2),
                            max(0.0, data["duration"] - 2 * self.horizon_s)):
                tta = data["duration"] - elapsed
                label = 1.0 if tta <= self.horizon_s else -1.0
                self.svm.partial_fit(signal_features(phase, elapsed, self.cycle_s), label)
                self.trained += 1
            return []
        phase = data.get("voted_color")
        elapsed = float(data.get("phase_elapsed", 0.0))
        if phase is None:
            return []
        feats = signal_features(phase, elapsed, self.cycle_s)
        margin = self.svm.decision(feats)
        out = {
            "phase": phase,
            "flips_soon": margin >= 0,
            "margin": margin,
            "true_tta": data.get("true_tta"),
            "capture_time": data.get("capture_time"),
        }
        return [tup.derive(out, KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return {"svm": self.svm.snapshot(), "trained": self.trained}

    def restore(self, state: Any) -> None:
        if state:
            self.svm.restore(state["svm"])
            self.trained = int(state["trained"])
        else:
            self.svm.restore(None)
            self.trained = 0


class IntersectionSink(SinkOperator):
    """K: publishes advisories and feeds the next intersection."""

    def __init__(self, name: str = "K") -> None:
        super().__init__(name)
