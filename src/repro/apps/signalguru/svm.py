"""A from-scratch linear SVM (Pegasos) for SignalGuru's predictor.

"After that, a Support Vector Machine (SVM) is used to train and predict
the transition pattern" (Section II-B).  SignalGuru's features are small
(phase-duration histograms, time-of-cycle encodings), so a linear SVM
trained with the Pegasos stochastic sub-gradient method is exactly the
right tool — tiny, online-updatable on a phone, no external deps.

Shalev-Shwartz et al., "Pegasos: Primal Estimated sub-GrAdient SOlver
for SVM", ICML 2007.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.checkpoint import snapshots


class LinearSVM:
    """Binary linear SVM trained by Pegasos sub-gradient descent.

    Labels are ±1.  ``partial_fit`` supports the streaming use in the
    DSPS; ``fit`` runs multiple epochs for batch training.
    """

    def __init__(self, n_features: int, lam: float = 1e-3, seed: int = 0) -> None:
        if n_features < 1:
            raise ValueError("need at least one feature")
        if lam <= 0:
            raise ValueError("lambda must be positive")
        self.n_features = n_features
        self.lam = lam
        self.w = np.zeros(n_features, dtype=np.float64)
        self.bias = 0.0
        self._t = 1
        self._rng = np.random.default_rng(seed)

    # -- training -----------------------------------------------------------
    def partial_fit(self, x: np.ndarray, y: float) -> None:
        """One Pegasos step on a single example (y in {-1, +1})."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_features,):
            raise ValueError(f"expected {self.n_features} features, got {x.shape}")
        if y not in (-1, 1, -1.0, 1.0):
            raise ValueError("labels must be +/-1")
        eta = 1.0 / (self.lam * self._t)
        margin = y * (self.w @ x + self.bias)
        # Un-share before the in-place updates: a checkpoint may hold w.
        self.w = snapshots.writable(self.w)
        self.w *= 1.0 - eta * self.lam
        if margin < 1.0:
            self.w += eta * y * x
            self.bias += eta * y
        # Project onto the ball of radius 1/sqrt(lam) (Pegasos step 3).
        norm = np.linalg.norm(self.w)
        bound = 1.0 / np.sqrt(self.lam)
        if norm > bound:
            self.w *= bound / norm
        self._t += 1

    def fit(self, X: np.ndarray, y: np.ndarray, epochs: int = 10) -> "LinearSVM":
        """Batch training: shuffled epochs of partial_fit."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ValueError("X must be (n_samples, n_features)")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        for _ in range(epochs):
            for i in self._rng.permutation(len(X)):
                self.partial_fit(X[i], float(y[i]))
        return self

    # -- inference -----------------------------------------------------------
    def decision(self, x: np.ndarray) -> float:
        """Signed distance to the separating hyperplane."""
        return float(self.w @ np.asarray(x, dtype=np.float64) + self.bias)

    def predict(self, x: np.ndarray) -> int:
        """Class label (+1 / -1)."""
        return 1 if self.decision(x) >= 0 else -1

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct predictions on a labelled set."""
        X = np.asarray(X, dtype=np.float64)
        preds = np.where(X @ self.w + self.bias >= 0, 1, -1)
        return float(np.mean(preds == np.asarray(y)))

    # -- state ----------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Serializable model state (CoW: ``w`` is frozen and shared)."""
        return {
            "w": snapshots.snap_attr(self, "w"),
            "bias": self.bias,
            "t": self._t,
            "lam": self.lam,
        }

    def restore(self, state: Optional[Dict]) -> None:
        """Reset from :meth:`snapshot` (None = fresh model)."""
        if state is None:
            self.w = np.zeros(self.n_features)
            self.bias = 0.0
            self._t = 1
        else:
            self.w = snapshots.adopt_array(state["w"], dtype=np.float64)
            self.bias = float(state["bias"])
            self._t = int(state["t"])
            self.lam = float(state["lam"])
