"""The SignalGuru application assembly: graph, placement, workloads (Fig. 3).

Ported onto the declarative :class:`~repro.apps.pipeline.PipelineSpec`
builder: the three parallel color/shape/motion filter chains are one
width-3 chain stage, so the compiled graph, placement, and workload
bindings match the hand-wired original exactly (guarded byte-for-byte
by the golden artifact hashes in ``tests/perf/``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.apps.pipeline import OpDef, PipelineApp, PipelineSpec, StageSpec, stage
from repro.apps.signalguru.operators import (
    CameraSource,
    ColorFilter,
    GroupOperator,
    IntersectionSink,
    IntersectionSource,
    MotionFilter,
    ShapeFilter,
    SVMPredictor,
    VotingFilter,
)
from repro.apps.signalguru.signal_model import TrafficSignal
from repro.apps.vision import FrameSpec
from repro.util.units import KB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


@dataclass
class SignalGuruParams:
    """Workload/cost calibration.

    Defaults target Table I: frames at ≈0.83/s across the three filter
    chains whose aggregate color-stage capacity is ≈0.87 frames/s —
    lightly saturated like BCP, with smaller frames (dash-cam crops).
    """

    #: Mean inter-frame interval across all contributing phones.
    camera_period_s: float = 1.05
    #: Encoded frame size.
    frame_size: int = 110 * KB
    #: Number of parallel filter chains (paper: 3).
    n_chains: int = 3
    #: Probability a frame misses the signal entirely (occlusion).
    occlusion_prob: float = 0.1
    #: The signal being observed.
    signal: TrafficSignal = None  # type: ignore[assignment]
    #: Per-stage reference CPU costs.
    color_cost: float = 1.6
    shape_cost: float = 0.7
    motion_cost: float = 0.4
    n_frames: int = 100_000

    def __post_init__(self) -> None:
        if self.signal is None:
            self.signal = TrafficSignal()
        if self.camera_period_s <= 0:
            raise ValueError("camera period must be positive")
        if self.n_chains < 1:
            raise ValueError("need at least one chain")


class SignalGuruApp(PipelineApp):
    """SignalGuru as a compiled pipeline (Fig. 3)."""

    name = "signalguru"

    def __init__(self, params: SignalGuruParams | None = None) -> None:
        self.params = params or SignalGuruParams()
        p = self.params
        super().__init__(PipelineSpec(
            name="signalguru",
            stages=(
                stage("S0", IntersectionSource),
                stage("S1", CameraSource),
                StageSpec(
                    name="chains",
                    ops=(
                        OpDef("C", lambda n: ColorFilter(n, cost_s=p.color_cost)),
                        OpDef("A", lambda n: ShapeFilter(n, cost_s=p.shape_cost)),
                        OpDef("M", lambda n: MotionFilter(n, cost_s=p.motion_cost)),
                    ),
                    width=p.n_chains,
                    upstream=("S1",),
                    numbered=True,
                ),
                stage("V", VotingFilter, upstream=("chains",)),
                stage("G", GroupOperator, upstream=("S0", "V")),
                stage("P", lambda n: SVMPredictor(n, cycle_s=p.signal.cycle_s),
                      upstream=("G",)),
                stage("K", IntersectionSink, upstream=("P",)),
            ),
            groups=(("S0",), ("S1",), ("chains",), ("V",), ("G", "P"), ("K",)),
            workloads=(
                ("S1", self._camera),
                ("S0", lambda rng, r: self._upstream_feed(rng) if r == 0 else None),
            ),
        ))

    # -- workloads -------------------------------------------------------------
    def _camera(self, rng: "RngRegistry", region_index: int):
        p = self.params
        gen = rng.stream(f"sg.camera.{region_index}")
        t = 0.0
        for i in range(p.n_frames):
            wait = float(gen.exponential(p.camera_period_s))
            t += wait
            phase, elapsed, tta = p.signal.phase_at(t)
            occluded = bool(gen.random() < p.occlusion_prob)
            spec = FrameSpec(
                seed=int(gen.integers(0, 2**31)),
                n_targets=0 if occluded else 1,
                encoded_size=p.frame_size,
            )
            payload = {
                "frame": spec,
                "true_color": phase,
                "true_tta": tta,
                "capture_time": t,
                "position": (60.0 + float(gen.normal(0, 2)), 80.0 + float(gen.normal(0, 2))),
            }
            yield (wait, payload, p.frame_size)

    def _upstream_feed(self, rng: "RngRegistry"):
        """Transition times broadcast by the previous intersection."""
        p = self.params
        gen = rng.stream("sg.upstream")
        t = 0.0
        while True:
            wait = float(gen.uniform(20.0, 50.0))
            t += wait
            phase, elapsed, tta = p.signal.phase_at(t)
            payload = {
                "voted_color": phase,
                "capture_time": t,
                "true_tta": tta,
                "upstream": True,
            }
            yield (wait, payload, KB)
