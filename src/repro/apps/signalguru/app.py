"""The SignalGuru application assembly: graph, placement, workloads (Fig. 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.apps.signalguru.operators import (
    CameraSource,
    ColorFilter,
    GroupOperator,
    IntersectionSink,
    IntersectionSource,
    MotionFilter,
    ShapeFilter,
    SVMPredictor,
    VotingFilter,
)
from repro.apps.signalguru.signal_model import TrafficSignal
from repro.apps.vision import FrameSpec
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.placement import Placement
from repro.util.units import KB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


@dataclass
class SignalGuruParams:
    """Workload/cost calibration.

    Defaults target Table I: frames at ≈0.83/s across the three filter
    chains whose aggregate color-stage capacity is ≈0.87 frames/s —
    lightly saturated like BCP, with smaller frames (dash-cam crops).
    """

    #: Mean inter-frame interval across all contributing phones.
    camera_period_s: float = 1.05
    #: Encoded frame size.
    frame_size: int = 110 * KB
    #: Number of parallel filter chains (paper: 3).
    n_chains: int = 3
    #: Probability a frame misses the signal entirely (occlusion).
    occlusion_prob: float = 0.1
    #: The signal being observed.
    signal: TrafficSignal = None  # type: ignore[assignment]
    #: Per-stage reference CPU costs.
    color_cost: float = 1.6
    shape_cost: float = 0.7
    motion_cost: float = 0.4
    n_frames: int = 100_000

    def __post_init__(self) -> None:
        if self.signal is None:
            self.signal = TrafficSignal()
        if self.camera_period_s <= 0:
            raise ValueError("camera period must be positive")
        if self.n_chains < 1:
            raise ValueError("need at least one chain")


class SignalGuruApp(AppSpec):
    """SignalGuru as an :class:`~repro.core.app.AppSpec`."""

    name = "signalguru"

    def __init__(self, params: SignalGuruParams | None = None) -> None:
        self.params = params or SignalGuruParams()

    # -- graph (Fig. 3) -------------------------------------------------------
    def build_graph(self) -> QueryGraph:
        p = self.params
        g = QueryGraph()
        g.add_operator(IntersectionSource("S0"))
        g.add_operator(CameraSource("S1"))
        for i in range(p.n_chains):
            g.add_operator(ColorFilter(f"C{i}", cost_s=p.color_cost))
            g.add_operator(ShapeFilter(f"A{i}", cost_s=p.shape_cost))
            g.add_operator(MotionFilter(f"M{i}", cost_s=p.motion_cost))
        g.add_operator(VotingFilter("V"))
        g.add_operator(GroupOperator("G"))
        g.add_operator(SVMPredictor("P", cycle_s=p.signal.cycle_s))
        g.add_operator(IntersectionSink("K"))

        for i in range(p.n_chains):
            g.chain("S1", f"C{i}", f"A{i}", f"M{i}", "V")
        g.connect("S0", "G")
        g.chain("V", "G", "P", "K")
        return g

    # -- placement ----------------------------------------------------------
    def build_placement(self, phone_ids: List[str]) -> Placement:
        p = self.params
        groups = [["S0"], ["S1"]]
        groups += [[f"C{i}", f"A{i}", f"M{i}"] for i in range(p.n_chains)]
        groups += [["V"], ["G", "P"], ["K"]]
        return Placement.pack_groups(groups, phone_ids)

    def compute_phones_needed(self) -> int:
        return self.params.n_chains + 5

    # -- workloads -------------------------------------------------------------
    def build_workloads(self, rng: "RngRegistry", region_index: int) -> Dict[str, Iterable]:
        workloads: Dict[str, Iterable] = {"S1": self._camera(rng, region_index)}
        if region_index == 0:
            workloads["S0"] = self._upstream_feed(rng)
        return workloads

    def _camera(self, rng: "RngRegistry", region_index: int):
        p = self.params
        gen = rng.stream(f"sg.camera.{region_index}")
        t = 0.0
        for i in range(p.n_frames):
            wait = float(gen.exponential(p.camera_period_s))
            t += wait
            phase, elapsed, tta = p.signal.phase_at(t)
            occluded = bool(gen.random() < p.occlusion_prob)
            spec = FrameSpec(
                seed=int(gen.integers(0, 2**31)),
                n_targets=0 if occluded else 1,
                encoded_size=p.frame_size,
            )
            payload = {
                "frame": spec,
                "true_color": phase,
                "true_tta": tta,
                "capture_time": t,
                "position": (60.0 + float(gen.normal(0, 2)), 80.0 + float(gen.normal(0, 2))),
            }
            yield (wait, payload, p.frame_size)

    def _upstream_feed(self, rng: "RngRegistry"):
        """Transition times broadcast by the previous intersection."""
        p = self.params
        gen = rng.stream("sg.upstream")
        t = 0.0
        while True:
            wait = float(gen.uniform(20.0, 50.0))
            t += wait
            phase, elapsed, tta = p.signal.phase_at(t)
            payload = {
                "voted_color": phase,
                "capture_time": t,
                "true_tta": tta,
                "upstream": True,
            }
            yield (wait, payload, KB)
