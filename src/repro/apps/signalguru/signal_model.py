"""Ground-truth traffic-signal dynamics for the synthetic intersection.

SignalGuru learns a signal's transition schedule from observations; this
module *is* the signal being observed — a fixed-time controller cycling
red → green → yellow, optionally with slow drift, from which camera
observations (with noise/occlusion) are sampled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

PHASES = ("red", "green", "yellow")


@dataclass
class TrafficSignal:
    """A fixed-time signal: red -> green -> yellow -> red...

    Parameters are typical urban settings; SignalGuru's SVM learns to
    predict time-to-next-transition from the current phase + elapsed time.
    """

    red_s: float = 40.0
    green_s: float = 35.0
    yellow_s: float = 4.0
    phase_offset_s: float = 0.0

    def __post_init__(self) -> None:
        if min(self.red_s, self.green_s, self.yellow_s) <= 0:
            raise ValueError("phase durations must be positive")

    @property
    def cycle_s(self) -> float:
        """Full cycle duration."""
        return self.red_s + self.green_s + self.yellow_s

    def phase_at(self, t: float) -> Tuple[str, float, float]:
        """(phase_name, elapsed_in_phase, time_to_transition) at time ``t``."""
        u = (t + self.phase_offset_s) % self.cycle_s
        if u < self.red_s:
            return "red", u, self.red_s - u
        u -= self.red_s
        if u < self.green_s:
            return "green", u, self.green_s - u
        u -= self.green_s
        return "yellow", u, self.yellow_s - u

    def color_at(self, t: float) -> str:
        """Just the phase name at ``t``."""
        return self.phase_at(t)[0]
