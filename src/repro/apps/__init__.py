"""The paper's two driving applications, built on the public DSPS API.

* :mod:`repro.apps.bcp` — **Bus Capacity Prediction** (Fig. 2): camera
  frames at each bus stop are face-counted with a Haar-cascade detector;
  statistical models predict boarding/alighting/staying passengers; the
  prediction cascades to the next stop.
* :mod:`repro.apps.signalguru` — **SignalGuru** (Fig. 3): windshield
  camera frames pass color/shape/motion filters; a voting stage and an
  SVM predict traffic-signal transition times, cascaded to the next
  intersection.

Shared synthetic-vision substrate in :mod:`repro.apps.vision` — the
cameras and scenes the paper captured with real hardware are generated
synthetically, but the detectors run real image-processing code on the
frames (see DESIGN.md's substitution table).
"""

from repro.apps.bcp.app import BCPApp, BCPParams
from repro.apps.signalguru.app import SignalGuruApp, SignalGuruParams

__all__ = ["BCPApp", "BCPParams", "SignalGuruApp", "SignalGuruParams"]
