"""The application platform: registry, pipeline builder, built-in apps.

* :mod:`repro.apps.registry` — the name -> app registry and
  :class:`~repro.apps.registry.AppRef`, the JSON-round-trippable
  (name, params) reference every experiment axis uses.
* :mod:`repro.apps.pipeline` — the declarative
  :class:`~repro.apps.pipeline.PipelineSpec` builder apps compile from.
* :mod:`repro.apps.bcp` — **Bus Capacity Prediction** (Fig. 2): camera
  frames at each bus stop are face-counted with a Haar-cascade detector;
  statistical models predict boarding/alighting/staying passengers; the
  prediction cascades to the next stop.
* :mod:`repro.apps.signalguru` — **SignalGuru** (Fig. 3): windshield
  camera frames pass color/shape/motion filters; a voting stage and an
  SVM predict traffic-signal transition times, cascaded to the next
  intersection.
* :mod:`repro.apps.edgeml` — **EdgeML** (sparse_framework-style): a
  camera feeds a neural network partitioned across the region's phones;
  each partition's weights are checkpointable state, so the app stresses
  schemes with megabytes of per-operator state and split-point-dependent
  inter-stage tensors.

Shared synthetic-vision substrate in :mod:`repro.apps.vision` — the
cameras and scenes the paper captured with real hardware are generated
synthetically, but the detectors run real image-processing code on the
frames (see DESIGN.md's substitution table).
"""

from repro.apps.bcp.app import BCPApp, BCPParams
from repro.apps.edgeml.app import EdgeMLApp, EdgeMLParams
from repro.apps.pipeline import OpDef, PipelineApp, PipelineSpec, StageSpec, stage
from repro.apps.registry import (
    AppEntry,
    AppRef,
    all_apps,
    app_names,
    create_app,
    get_app,
    register_app,
    unregister_app,
)
from repro.apps.signalguru.app import SignalGuruApp, SignalGuruParams

register_app(
    "bcp", BCPApp, BCPParams,
    description="Bus Capacity Prediction (Fig. 2): camera frames -> "
                "Haar-style face counting -> boarding/capacity models",
)
register_app(
    "signalguru", SignalGuruApp, SignalGuruParams,
    description="SignalGuru (Fig. 3): color/shape/motion filter chains -> "
                "voting -> SVM traffic-signal prediction",
)
register_app(
    "edgeml", EdgeMLApp, EdgeMLParams,
    description="Split-DNN edge inference (sparse_framework-style): camera "
                "-> partitioned network stages with weight state -> "
                "online prototype classifier",
)

__all__ = [
    "AppEntry",
    "AppRef",
    "BCPApp",
    "BCPParams",
    "EdgeMLApp",
    "EdgeMLParams",
    "OpDef",
    "PipelineApp",
    "PipelineSpec",
    "SignalGuruApp",
    "SignalGuruParams",
    "StageSpec",
    "all_apps",
    "app_names",
    "create_app",
    "get_app",
    "register_app",
    "stage",
    "unregister_app",
]
