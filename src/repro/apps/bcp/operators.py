"""BCP's operators (Fig. 2).

S0: data from previous bus stop      N: noise filter
A: bus arrival-time prediction       L: alighting prediction
S1: camera data source               D: dispatcher
H: motion detection (passerby filter)
C0..C3: counters (faces in images)   B: boarding prediction
J: join                              P: bus-capacity prediction
K: sink (to next bus stop)

CPU costs are reference-seconds on the 600 MHz phone; the heavy stage is
the Haar-style face counting (HaarTraining in the paper), which is why
the DSPS spreads four counters over four phones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.apps.bcp.models import (
    AlightingModel,
    ArrivalTimeModel,
    BoardingModel,
    CapacityModel,
)
from repro.apps.vision import FrameSpec, count_blobs
from repro.checkpoint import snapshots
from repro.core.operator import Operator, OperatorContext, SinkOperator, SourceOperator
from repro.core.tuples import StreamTuple
from repro.util.units import KB


@dataclass
class BCPCosts:
    """Reference CPU seconds per stage (calibration knobs).

    Defaults put the 4-counter stage's aggregate capacity at ≈0.56
    images/s, just above the camera rate, matching Table I's 0.54
    tuples/s per region for MobiStreams with FT off.
    """

    noise_filter: float = 0.05
    motion_detect: float = 1.2
    dispatch: float = 0.02
    count_faces: float = 6.8
    predict: float = 0.15
    join: float = 0.05


class NoiseFilter(Operator):
    """N: smooths/clamps the prediction arriving from the previous stop."""

    def __init__(self, name: str = "N", cost_s: float = 0.05) -> None:
        super().__init__(name)
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        data["on_bus"] = max(0.0, float(data.get("on_bus", 0.0)))
        return [tup.derive(data, tup.size)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost


class ArrivalPredictor(Operator):
    """A: stateful arrival-time prediction."""

    def __init__(self, name: str = "A", state_size: int = 2048 * KB, cost_s: float = 0.15) -> None:
        super().__init__(name)
        self.model = ArrivalTimeModel()
        self._state_size = state_size
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        if "travel_s" in data:
            self.model.observe(float(data["travel_s"]))
        data["eta_s"] = self.model.predict()
        return [tup.derive(data, 2 * KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return self.model.snapshot()

    def restore(self, state: Any) -> None:
        self.model.restore(state)


class AlightingPredictor(Operator):
    """L: stateful alighting prediction."""

    def __init__(self, name: str = "L", state_size: int = 2048 * KB, cost_s: float = 0.15) -> None:
        super().__init__(name)
        self.model = AlightingModel()
        self._state_size = state_size
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        on_bus = float(data.get("on_bus", 0.0))
        if "alighted" in data:
            self.model.observe(on_bus, float(data["alighted"]))
        data["alighting"] = self.model.predict(on_bus)
        return [tup.derive(data, 2 * KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return self.model.snapshot()

    def restore(self, state: Any) -> None:
        self.model.restore(state)


class MotionDetector(Operator):
    """H: passer-by filter — drops frames whose crowd is just walking past.

    Uses the frame's scene metadata (stationary vs. transient targets);
    the compute cost models frame differencing on the phone.
    """

    def __init__(self, name: str = "H", cost_s: float = 1.2) -> None:
        super().__init__(name)
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        spec: FrameSpec = tup.payload["frame"]
        if tup.payload.get("transient", False) and spec.n_targets == 0:
            return []  # nobody actually waiting
        return [tup.derive(tup.payload, tup.size)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost


class Dispatcher(Operator):
    """D: spreads frames over the parallel counters, one counter per frame.

    Routing is deterministic in the frame's sequence number, so replicas
    and replays dispatch identically.
    """

    def __init__(self, name: str = "D", cost_s: float = 0.02) -> None:
        super().__init__(name)
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        return [tup.derive(tup.payload, tup.size)]

    def route(self, out: StreamTuple, downstream: List[str]) -> List[str]:
        if not downstream:
            return []
        return [downstream[out.source_seq % len(downstream)]]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost


class FaceCounter(Operator):
    """C0..C3: count people in a frame (the HaarTraining stand-in).

    Renders the synthetic frame and runs the integral-image blob
    detector; the heavy reference cost models the Haar cascade on a
    600 MHz Cortex-A8.
    """

    def __init__(self, name: str, state_size: int = 256 * KB, cost_s: float = 6.8) -> None:
        super().__init__(name)
        self._state_size = state_size
        self._cost = cost_s
        self.frames_counted = 0

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        spec: FrameSpec = tup.payload["frame"]
        count = count_blobs(spec)
        self.frames_counted += 1
        out = {"waiting": count, "frame_seq": tup.source_seq}
        return [tup.derive(out, KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return {"frames_counted": self.frames_counted}

    def restore(self, state: Any) -> None:
        self.frames_counted = int(state["frames_counted"]) if state else 0


class BoardingPredictor(Operator):
    """B: stateful boarding prediction from the counted waiting crowd."""

    def __init__(self, name: str = "B", state_size: int = 2048 * KB, cost_s: float = 0.15) -> None:
        super().__init__(name)
        self.model = BoardingModel()
        self._state_size = state_size
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        data["boarding"] = self.model.predict(float(data.get("waiting", 0.0)))
        return [tup.derive(data, KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return self.model.snapshot()

    def restore(self, state: Any) -> None:
        self.model.restore(state)


class JoinOperator(Operator):
    """J: joins the camera-side (boarding) and bus-side (eta/alighting)
    streams; emits a combined record whenever both sides are fresh."""

    def __init__(self, name: str = "J", state_size: int = 512 * KB, cost_s: float = 0.05) -> None:
        super().__init__(name)
        self._state_size = state_size
        self._cost = cost_s
        self.latest: Dict[str, Optional[dict]] = {"camera": None, "bus": None}

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        side = "camera" if "boarding" in data else "bus"
        self.latest[side] = data
        cam, bus = self.latest["camera"], self.latest["bus"]
        if cam is None or bus is None:
            return []
        if side == "bus":
            # Bus-side updates only refresh state; the camera stream drives
            # the output rate (one prediction per counted frame), so every
            # region emits at its own camera rate rather than compounding
            # the upstream region's rate.
            return []
        merged = dict(bus)
        merged.update(cam)
        return [tup.derive(merged, KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return snapshots.freeze_state(self.latest)

    def restore(self, state: Any) -> None:
        self.latest = (
            snapshots.thaw_state(state) if state else {"camera": None, "bus": None}
        )


class CapacityPredictor(Operator):
    """P: the headline bus-capacity prediction."""

    def __init__(self, name: str = "P", state_size: int = 2048 * KB, cost_s: float = 0.15) -> None:
        super().__init__(name)
        self.model = CapacityModel()
        self._state_size = state_size
        self._cost = cost_s

    def process(self, tup: StreamTuple, ctx: OperatorContext) -> List[StreamTuple]:
        data = dict(tup.payload)
        capacity = self.model.predict(
            on_bus=float(data.get("on_bus", 0.0)),
            alighting=float(data.get("alighting", 0.0)),
            boarding=float(data.get("boarding", 0.0)),
        )
        out = {
            "on_bus": capacity,
            "eta_s": data.get("eta_s", 120.0),
            "stop_seq": data.get("stop_seq", 0),
        }
        return [tup.derive(out, KB)]

    def cost(self, tup: StreamTuple) -> float:
        return self._cost

    def state_size(self) -> int:
        return self._state_size

    def snapshot(self) -> Any:
        return self.model.snapshot()

    def restore(self, state: Any) -> None:
        self.model.restore(state)


class StopSource(SourceOperator):
    """S0: predictions arriving from the previous bus stop."""

    def __init__(self, name: str = "S0") -> None:
        super().__init__(name)


class CameraSource(SourceOperator):
    """S1: the bus-stop ceiling camera."""

    def __init__(self, name: str = "S1") -> None:
        super().__init__(name)


class StopSink(SinkOperator):
    """K: publishes the prediction and forwards it to the next stop."""

    def __init__(self, name: str = "K") -> None:
        super().__init__(name)
