"""BCP's statistical prediction models.

"The prediction is based on statistical models for boarding/alighting
passengers at each bus stop, collected via two live real-time data
sources" (Section II-B).  Each model is a small online estimator whose
*reported* state size models the historical statistics a real deployment
accumulates (time-of-day histograms, per-stop regressions) — the paper's
per-node checkpoint state.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.checkpoint import snapshots


class OnlineStats:
    """Exponentially-weighted mean/variance (the shared estimator core)."""

    def __init__(self, alpha: float = 0.2, initial: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.mean = float(initial)
        self.var = 1.0
        self.count = 0

    def update(self, x: float) -> None:
        """Fold one observation into the estimate."""
        self.count += 1
        delta = x - self.mean
        self.mean += self.alpha * delta
        self.var = (1 - self.alpha) * (self.var + self.alpha * delta * delta)

    def snapshot(self) -> Dict[str, float]:
        """Serializable state (scalar-only: already a cheap frozen view)."""
        return snapshots.freeze_state(
            {"alpha": self.alpha, "mean": self.mean, "var": self.var, "count": self.count}
        )

    def restore(self, state: Optional[Dict[str, float]]) -> None:
        """Reset from :meth:`snapshot` output (None = fresh)."""
        if state is None:
            self.mean, self.var, self.count = 0.0, 1.0, 0
        else:
            self.alpha = state["alpha"]
            self.mean = state["mean"]
            self.var = state["var"]
            self.count = int(state["count"])


class BoardingModel(OnlineStats):
    """Predicts boarding passengers from the waiting-crowd count.

    Learns the boarding *fraction* (not everyone waiting boards this
    line's bus) from observed (waiting, boarded) pairs.
    """

    def __init__(self) -> None:
        super().__init__(alpha=0.15, initial=0.7)
        self.mean = 0.7  # prior boarding fraction

    def predict(self, waiting_count: float) -> float:
        """Expected boarders given the counted waiting crowd."""
        return max(0.0, waiting_count * float(np.clip(self.mean, 0.0, 1.0)))

    def observe(self, waiting_count: float, boarded: float) -> None:
        """Learn from ground truth when the bus actually leaves."""
        if waiting_count > 0:
            self.update(boarded / waiting_count)


class AlightingModel(OnlineStats):
    """Predicts the fraction of on-bus passengers alighting at this stop."""

    def __init__(self) -> None:
        super().__init__(alpha=0.15, initial=0.25)
        self.mean = 0.25

    def predict(self, on_bus: float) -> float:
        """Expected alighting passengers."""
        return max(0.0, on_bus * float(np.clip(self.mean, 0.0, 1.0)))

    def observe(self, on_bus: float, alighted: float) -> None:
        """Learn from observed alightings."""
        if on_bus > 0:
            self.update(alighted / on_bus)


class ArrivalTimeModel(OnlineStats):
    """Predicts the bus's travel time from the previous stop (seconds)."""

    def __init__(self, prior_s: float = 120.0) -> None:
        super().__init__(alpha=0.2, initial=prior_s)
        self.mean = prior_s

    def predict(self) -> float:
        """Expected inter-stop travel time."""
        return max(10.0, self.mean)

    def observe(self, travel_s: float) -> None:
        """Learn from a completed leg."""
        self.update(travel_s)


class CapacityModel:
    """Combines the pieces into the headline prediction.

    capacity_next = on_bus - alighting + boarding, clamped to the
    vehicle's physical capacity.
    """

    def __init__(self, max_capacity: int = 60) -> None:
        if max_capacity <= 0:
            raise ValueError("capacity must be positive")
        self.max_capacity = max_capacity

    def predict(self, on_bus: float, alighting: float, boarding: float) -> float:
        """Passengers on board when the bus leaves this stop."""
        return float(np.clip(on_bus - alighting + boarding, 0.0, self.max_capacity))

    def snapshot(self) -> Dict[str, Any]:
        """Serializable state."""
        return {"max_capacity": self.max_capacity}

    def restore(self, state: Optional[Dict[str, Any]]) -> None:
        """Reset from snapshot."""
        if state is not None:
            self.max_capacity = int(state["max_capacity"])
