"""The BCP application assembly: graph, placement, workloads (Fig. 2).

Since the app-platform refactor, the assembly is a declarative
:class:`~repro.apps.pipeline.PipelineSpec` — the stages, fan-in/out,
placement groups, and workload bindings below compile to exactly the
graph the hand-wired version built (guarded byte-for-byte by the golden
artifact hashes in ``tests/perf/``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.apps.bcp.operators import (
    AlightingPredictor,
    ArrivalPredictor,
    BCPCosts,
    BoardingPredictor,
    CameraSource,
    CapacityPredictor,
    Dispatcher,
    FaceCounter,
    JoinOperator,
    MotionDetector,
    NoiseFilter,
    StopSink,
    StopSource,
)
from repro.apps.pipeline import PipelineApp, PipelineSpec, stage
from repro.apps.vision import FrameSpec
from repro.util.units import KB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


@dataclass
class BCPParams:
    """Workload and cost calibration for one deployment.

    Defaults target Table I: camera at ≈0.56 frames/s, four counters with
    an aggregate capacity of ≈0.59 frames/s — lightly saturated, so
    fault-tolerance overhead shows up as throughput loss and queueing
    latency exactly as in Fig. 8.
    """

    #: Mean camera inter-frame interval, seconds.
    camera_period_s: float = 1.45
    #: Encoded frame size on the wire.
    frame_size: int = 220 * KB
    #: Number of parallel counter operators.
    n_counters: int = 4
    #: People waiting at the stop: Poisson mean.
    crowd_mean: float = 4.0
    #: Probability a frame catches only passers-by (dropped by H).
    transient_prob: float = 0.15
    #: Per-stage CPU costs.
    costs: BCPCosts = None  # type: ignore[assignment]
    #: How many frames the camera produces (None = unbounded).
    n_frames: int = 100_000

    def __post_init__(self) -> None:
        if self.costs is None:
            self.costs = BCPCosts()
        if self.camera_period_s <= 0:
            raise ValueError("camera period must be positive")
        if self.n_counters < 1:
            raise ValueError("need at least one counter")


class BCPApp(PipelineApp):
    """Bus Capacity Prediction as a compiled pipeline (Fig. 2)."""

    name = "bcp"

    def __init__(self, params: BCPParams | None = None) -> None:
        self.params = params or BCPParams()
        p, c = self.params, self.params.costs
        super().__init__(PipelineSpec(
            name="bcp",
            stages=(
                stage("S0", StopSource),
                stage("N", lambda n: NoiseFilter(n, cost_s=c.noise_filter),
                      upstream=("S0",)),
                stage("A", lambda n: ArrivalPredictor(n, cost_s=c.predict),
                      upstream=("N",)),
                stage("L", lambda n: AlightingPredictor(n, cost_s=c.predict),
                      upstream=("N",)),
                stage("S1", CameraSource),
                stage("H", lambda n: MotionDetector(n, cost_s=c.motion_detect),
                      upstream=("S1",)),
                stage("D", lambda n: Dispatcher(n, cost_s=c.dispatch),
                      upstream=("H",)),
                stage("C", lambda n: FaceCounter(n, cost_s=c.count_faces),
                      upstream=("D",), width=p.n_counters, numbered=True),
                stage("B", lambda n: BoardingPredictor(n, cost_s=c.predict),
                      upstream=("C",)),
                stage("J", lambda n: JoinOperator(n, cost_s=c.join),
                      upstream=("A", "L", "B")),
                stage("P", lambda n: CapacityPredictor(n, cost_s=c.predict),
                      upstream=("J",)),
                stage("K", StopSink, upstream=("P",)),
            ),
            # "Operators with the same color are on the same node."
            groups=(("S0", "N"), ("S1", "H", "D"), ("C",),
                    ("A", "L", "B", "J"), ("P", "K")),
            workloads=(
                ("S1", self._camera),
                # The first stop has no upstream region; a bus-departure
                # feed plays the role of the previous stop's output.
                ("S0", lambda rng, r: self._bus_feed(rng) if r == 0 else None),
            ),
        ))

    # -- workloads -------------------------------------------------------------
    def _camera(self, rng: "RngRegistry", region_index: int):
        p = self.params
        gen = rng.stream(f"bcp.camera.{region_index}")
        for i in range(p.n_frames):
            wait = float(gen.exponential(p.camera_period_s))
            n_people = int(gen.poisson(p.crowd_mean))
            spec = FrameSpec(
                seed=int(gen.integers(0, 2**31)),
                n_targets=n_people,
                encoded_size=p.frame_size,
            )
            payload = {
                "frame": spec,
                "transient": bool(gen.random() < p.transient_prob),
                "truth_waiting": n_people,
            }
            yield (wait, payload, p.frame_size)

    def _bus_feed(self, rng: "RngRegistry"):
        """Bus state as it leaves the (virtual) previous stop."""
        gen = rng.stream("bcp.bus")
        stop_seq = 0
        while True:
            wait = float(gen.uniform(90.0, 180.0))
            payload = {
                "on_bus": float(gen.integers(5, 45)),
                "travel_s": float(gen.uniform(60.0, 240.0)),
                "stop_seq": stop_seq,
            }
            stop_seq += 1
            yield (wait, payload, 2 * KB)
