"""The BCP application assembly: graph, placement, workloads (Fig. 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.apps.bcp.operators import (
    AlightingPredictor,
    ArrivalPredictor,
    BCPCosts,
    BoardingPredictor,
    CameraSource,
    CapacityPredictor,
    Dispatcher,
    FaceCounter,
    JoinOperator,
    MotionDetector,
    NoiseFilter,
    StopSink,
    StopSource,
)
from repro.apps.vision import FrameSpec
from repro.core.app import AppSpec
from repro.core.graph import QueryGraph
from repro.core.placement import Placement
from repro.util.units import KB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.rng import RngRegistry


@dataclass
class BCPParams:
    """Workload and cost calibration for one deployment.

    Defaults target Table I: camera at ≈0.56 frames/s, four counters with
    an aggregate capacity of ≈0.59 frames/s — lightly saturated, so
    fault-tolerance overhead shows up as throughput loss and queueing
    latency exactly as in Fig. 8.
    """

    #: Mean camera inter-frame interval, seconds.
    camera_period_s: float = 1.45
    #: Encoded frame size on the wire.
    frame_size: int = 220 * KB
    #: Number of parallel counter operators.
    n_counters: int = 4
    #: People waiting at the stop: Poisson mean.
    crowd_mean: float = 4.0
    #: Probability a frame catches only passers-by (dropped by H).
    transient_prob: float = 0.15
    #: Per-stage CPU costs.
    costs: BCPCosts = None  # type: ignore[assignment]
    #: How many frames the camera produces (None = unbounded).
    n_frames: int = 100_000

    def __post_init__(self) -> None:
        if self.costs is None:
            self.costs = BCPCosts()
        if self.camera_period_s <= 0:
            raise ValueError("camera period must be positive")
        if self.n_counters < 1:
            raise ValueError("need at least one counter")


class BCPApp(AppSpec):
    """Bus Capacity Prediction as an :class:`~repro.core.app.AppSpec`."""

    name = "bcp"

    def __init__(self, params: BCPParams | None = None) -> None:
        self.params = params or BCPParams()

    # -- graph (Fig. 2) ----------------------------------------------------
    def build_graph(self) -> QueryGraph:
        p = self.params
        c = p.costs
        g = QueryGraph()
        g.add_operator(StopSource("S0"))
        g.add_operator(NoiseFilter("N", cost_s=c.noise_filter))
        g.add_operator(ArrivalPredictor("A", cost_s=c.predict))
        g.add_operator(AlightingPredictor("L", cost_s=c.predict))
        g.add_operator(CameraSource("S1"))
        g.add_operator(MotionDetector("H", cost_s=c.motion_detect))
        g.add_operator(Dispatcher("D", cost_s=c.dispatch))
        for i in range(p.n_counters):
            g.add_operator(FaceCounter(f"C{i}", cost_s=c.count_faces))
        g.add_operator(BoardingPredictor("B", cost_s=c.predict))
        g.add_operator(JoinOperator("J", cost_s=c.join))
        g.add_operator(CapacityPredictor("P", cost_s=c.predict))
        g.add_operator(StopSink("K"))

        g.chain("S0", "N")
        g.connect("N", "A")
        g.connect("N", "L")
        g.chain("S1", "H", "D")
        for i in range(p.n_counters):
            g.chain("D", f"C{i}", "B")
        g.connect("A", "J")
        g.connect("L", "J")
        g.connect("B", "J")
        g.chain("J", "P", "K")
        return g

    # -- placement ("operators with the same color are on the same node") ----
    def build_placement(self, phone_ids: List[str]) -> Placement:
        p = self.params
        groups = [["S0", "N"], ["S1", "H", "D"]]
        groups += [[f"C{i}"] for i in range(p.n_counters)]
        groups += [["A", "L", "B", "J"], ["P", "K"]]
        return Placement.pack_groups(groups, phone_ids)

    def compute_phones_needed(self) -> int:
        return self.params.n_counters + 4

    # -- workloads -------------------------------------------------------------
    def build_workloads(self, rng: "RngRegistry", region_index: int) -> Dict[str, Iterable]:
        workloads: Dict[str, Iterable] = {
            "S1": self._camera(rng, region_index),
        }
        if region_index == 0:
            # The first stop has no upstream region; a bus-departure feed
            # plays the role of the previous stop's output.
            workloads["S0"] = self._bus_feed(rng)
        return workloads

    def _camera(self, rng: "RngRegistry", region_index: int):
        p = self.params
        gen = rng.stream(f"bcp.camera.{region_index}")
        for i in range(p.n_frames):
            wait = float(gen.exponential(p.camera_period_s))
            n_people = int(gen.poisson(p.crowd_mean))
            spec = FrameSpec(
                seed=int(gen.integers(0, 2**31)),
                n_targets=n_people,
                encoded_size=p.frame_size,
            )
            payload = {
                "frame": spec,
                "transient": bool(gen.random() < p.transient_prob),
                "truth_waiting": n_people,
            }
            yield (wait, payload, p.frame_size)

    def _bus_feed(self, rng: "RngRegistry"):
        """Bus state as it leaves the (virtual) previous stop."""
        gen = rng.stream("bcp.bus")
        stop_seq = 0
        while True:
            wait = float(gen.uniform(90.0, 180.0))
            payload = {
                "on_bus": float(gen.integers(5, 45)),
                "travel_s": float(gen.uniform(60.0, 240.0)),
                "stop_seq": stop_seq,
            }
            stop_seq += 1
            yield (wait, payload, 2 * KB)
