"""Bus Capacity Prediction (BCP) — the paper's first driving application."""

from repro.apps.bcp.app import BCPApp, BCPParams
from repro.apps.bcp.models import (
    AlightingModel,
    ArrivalTimeModel,
    BoardingModel,
    CapacityModel,
)

__all__ = [
    "AlightingModel",
    "ArrivalTimeModel",
    "BCPApp",
    "BCPParams",
    "BoardingModel",
    "CapacityModel",
]
